"""Native vs pure-Python kernel backends on the Fig. 14 workload.

Two benchmark pairs, gated by ``check_regression.py --speedup-pair``:

* ``test_fig14_kernel_hot_paths_{python,native}`` — replays the exact
  kernel-call trace of the full Fig. 14 Freebase workload over a v3
  mapped snapshot (every ``bfs_expand``, ``csr_neighbors``,
  ``probe_tail``, ``filter_pairs``, score accumulation and
  threshold-heap operation the 20 queries issue, with the same
  arguments) against one backend.  This isolates the interpreter loops
  the native extension replaces; CI gates the native side at >= 2x the
  pure side.
* ``test_fig14_explore_{python,native}`` — the end-to-end lattice
  exploration of the same workload per backend.  The explore phase is
  numpy-dominated (the vectorized join core), so the honest end-to-end
  win is modest; CI gates only that native never loses to pure.

The trace is captured once by substituting recording wrappers into the
live kernel namespace and running every workload query below the GQBE
facade (which would re-assert its kernel mode and unbind the recorder).
Dicts the kernels mutate in place (BFS distance maps, score records)
are snapshotted at call time; each replay starts from fresh copies and
prebound backend callables, both rebuilt in the benchmark's untimed
setup phase, so the timed region runs kernel calls only.
"""

from __future__ import annotations

import os

import pytest

from repro import _kernels
from repro._kernels import kernels
from repro.discovery.mqg import discover_maximal_query_graph
from repro.evaluation.harness import ExperimentHarness, HarnessConfig
from repro.graph.neighborhood import neighborhood_graph
from repro.lattice.exploration import BestFirstExplorer
from repro.lattice.query_graph import LatticeSpace
from repro.storage.snapshot import GraphStore

#: Floor on the trace's workload scale.  The kernels' win grows with the
#: size of the scalar loops; at the CI smoke scale (0.25) the replayed
#: loops are short enough that per-call dispatch overhead drags the
#: hot-path ratio under its 2x gate.  The gated pair therefore always
#: records its trace at >= 0.5 — the suite's default scale, where the
#: documented speedups were measured — while still following any larger
#: GQBE_BENCH_SCALE.  (Same default as benchmarks/conftest.py.)
TRACE_SCALE = max(float(os.environ.get("GQBE_BENCH_SCALE", "0.5")), 0.5)

# ---------------------------------------------------------------------------
# trace capture
# ---------------------------------------------------------------------------


class _Recorder:
    """Records every kernel call issued by the engine into a trace.

    Each trace entry is ``(op, args...)`` where mutable arguments
    (``distances``, ``records``) are snapshotted at call time;
    :func:`_materialize` rebuilds fresh copies before every replay.
    Threshold heaps are stateful, so their ``note``/``threshold`` calls
    are recorded per instance and replayed against a fresh heap of the
    backend under test.
    """

    def __init__(self, backend):
        self.backend = backend
        self.trace: list[tuple] = []

    def bfs_expand(self, frontier, out_indptr, out_objects, in_indptr,
                   in_subjects, distances, depth):
        self.trace.append(("bfs_expand", list(frontier), out_indptr,
                           out_objects, in_indptr, in_subjects,
                           dict(distances), depth))
        return self.backend.bfs_expand(frontier, out_indptr, out_objects,
                                       in_indptr, in_subjects, distances,
                                       depth)

    def csr_neighbors(self, node_id, out_indptr, out_objects, in_indptr,
                      in_subjects):
        self.trace.append(("csr_neighbors", node_id, out_indptr, out_objects,
                           in_indptr, in_subjects))
        return self.backend.csr_neighbors(node_id, out_indptr, out_objects,
                                          in_indptr, in_subjects)

    def probe_tail(self, rows, buckets, bound_col, injective, max_rows):
        self.trace.append(("probe_tail", rows, buckets, bound_col, injective,
                           max_rows))
        return self.backend.probe_tail(rows, buckets, bound_col, injective,
                                       max_rows)

    def filter_pairs(self, rows, subject_col, object_col, pairs):
        self.trace.append(("filter_pairs", rows, subject_col, object_col,
                           pairs))
        return self.backend.filter_pairs(rows, subject_col, object_col, pairs)

    def accumulate_structure(self, answers, excluded, records, mask_structure,
                             mask, on_structure_improved):
        # The callback feeds the live threshold heap; its note() calls are
        # recorded separately by the _RecordingTopK wrapper below, so the
        # replayed accumulation runs callback-free.
        self.trace.append(("accumulate_structure", answers, excluded,
                           _copy_records(records), mask_structure, mask))
        return self.backend.accumulate_structure(
            answers, excluded, records, mask_structure, mask,
            on_structure_improved)

    def accumulate_content(self, matches, records, mask_structure, mask,
                           content_of):
        self.trace.append(("accumulate_content", matches,
                           _copy_records(records), mask_structure, mask,
                           content_of))
        return self.backend.accumulate_content(matches, records,
                                               mask_structure, mask,
                                               content_of)

    def TopKThreshold(self, k_prime):
        recorder = self

        class _RecordingTopK:
            def __init__(inner):
                inner._top = recorder.backend.TopKThreshold(k_prime)
                inner._id = len(recorder.trace)
                recorder.trace.append(("topk_new", inner._id, k_prime))

            def note(inner, answer, score):
                recorder.trace.append(("topk_note", inner._id, answer, score))
                return inner._top.note(answer, score)

            def threshold(inner):
                recorder.trace.append(("topk_threshold", inner._id))
                return inner._top.threshold()

            def __len__(inner):
                return len(inner._top)

        return _RecordingTopK()


def _copy_records(records):
    return {answer: list(record) for answer, record in records.items()}


def _record_workload_trace(harness, graph_store):
    """Run every Fig. 14 query over the mapped snapshot, capturing calls."""
    queries = harness._bundle("freebase").workload.queries
    graph = graph_store.graph
    statistics = graph_store.statistics
    store = graph_store.store
    recorder = _Recorder(_kernels._pure)
    saved_mode = "on" if kernels.backend == "native" else "off"
    kernels._bind(recorder, "recording")
    try:
        for query in queries:
            neighborhood = neighborhood_graph(graph, query.query_tuple, d=2)
            mqg = discover_maximal_query_graph(
                neighborhood, statistics, r=harness.config.mqg_size)
            explorer = BestFirstExplorer(
                LatticeSpace(mqg),
                store,
                k=10,
                k_prime=harness.config.k_prime,
                excluded_tuples={query.query_tuple},
                max_rows=harness.config.max_join_rows,
                node_budget=harness.config.node_budget,
            )
            explorer.run()
    finally:
        # select() with a real mode restores the real function bindings.
        _kernels.select(saved_mode)
    return recorder.trace


def _materialize(trace, backend):
    """Per-op call batches with fresh copies of mutable args.

    Built in the benchmark's untimed setup phase so the timed region is
    nothing but kernel calls: per-op loops with exact arities (direct
    vectorcalls, no ``*args`` unpacking), prebound backend callables,
    fresh copies of the in-place-mutated dicts, and fresh threshold
    heaps of the backend under test.  ``content_of`` is replayed as a
    lookup into a precomputed signature→score table — the traced
    callback runs identical Python scoring code under either backend,
    so timing it would only dilute the kernel comparison.  Replay order
    is per-op instead of interleaved; every call's inputs are
    independent snapshots, and each heap's note/threshold sequence is
    preserved, so the work per call is unchanged.
    """
    bfs, csr, probe, filt, acc_s, acc_c, topk = [], [], [], [], [], [], []
    tops: dict[int, object] = {}
    for entry in trace:
        op = entry[0]
        if op == "bfs_expand":
            bfs.append((list(entry[1]), entry[2], entry[3], entry[4],
                        entry[5], dict(entry[6]), entry[7]))
        elif op == "csr_neighbors":
            csr.append(entry[1:])
        elif op == "probe_tail":
            probe.append(entry[1:])
        elif op == "filter_pairs":
            filt.append(entry[1:])
        elif op == "accumulate_structure":
            acc_s.append(entry[1:3] + (_copy_records(entry[3]),)
                         + entry[4:])
        elif op == "accumulate_content":
            table: dict[int, float] = {}
            content_of = entry[5]
            for _answer, signature in entry[1]:
                if signature not in table:
                    table[signature] = content_of(signature)
            acc_c.append((entry[1], _copy_records(entry[2]), entry[3],
                          entry[4], table.__getitem__))
        elif op == "topk_new":
            tops[entry[1]] = backend.TopKThreshold(entry[2])
        elif op == "topk_note":
            topk.append((tops[entry[1]].note, entry[2], entry[3]))
        elif op == "topk_threshold":
            top = tops[entry[1]]
            topk.append(
                (lambda _answer, _score, _top=top: _top.threshold(),
                 None, None))
    return backend, (bfs, csr, probe, filt, acc_s, acc_c, topk)


def _replay(backend, batches):
    """Run every traced kernel call; the whole loop is kernel time."""
    bfs, csr, probe, filt, acc_s, acc_c, topk = batches
    bfs_expand = backend.bfs_expand
    for frontier, out_ip, out_obj, in_ip, in_subj, distances, depth in bfs:
        bfs_expand(frontier, out_ip, out_obj, in_ip, in_subj, distances,
                   depth)
    csr_neighbors = backend.csr_neighbors
    for node_id, out_ip, out_obj, in_ip, in_subj in csr:
        csr_neighbors(node_id, out_ip, out_obj, in_ip, in_subj)
    probe_tail = backend.probe_tail
    for rows, buckets, bound_col, injective, max_rows in probe:
        probe_tail(rows, buckets, bound_col, injective, max_rows)
    filter_pairs = backend.filter_pairs
    for rows, subject_col, object_col, pairs in filt:
        filter_pairs(rows, subject_col, object_col, pairs)
    accumulate_structure = backend.accumulate_structure
    for answers, excluded, records, mask_structure, mask in acc_s:
        accumulate_structure(answers, excluded, records, mask_structure,
                             mask, None)
    accumulate_content = backend.accumulate_content
    for matches, records, mask_structure, mask, content_of in acc_c:
        accumulate_content(matches, records, mask_structure, mask,
                           content_of)
    for note, answer, score in topk:
        note(answer, score)
    return sum(map(len, batches))


@pytest.fixture(scope="module")
def trace_harness(harness):
    """The session harness, floored at TRACE_SCALE for the gated pair."""
    if harness.config.scale >= TRACE_SCALE:
        return harness
    config = harness.config
    return ExperimentHarness(
        HarnessConfig(
            scale=TRACE_SCALE,
            mqg_size=config.mqg_size,
            k_prime=config.k_prime,
            node_budget=config.node_budget,
            max_join_rows=config.max_join_rows,
        )
    )


@pytest.fixture(scope="module")
def kernel_trace(trace_harness, tmp_path_factory):
    """The Fig. 14 workload's kernel-call trace over a v3 snapshot."""
    workload = trace_harness.freebase_workload()
    path = tmp_path_factory.mktemp("kernel-bench") / "freebase.snap"
    GraphStore.build(workload.dataset.graph).save(path, format="v3")
    trace = _record_workload_trace(trace_harness, GraphStore.load(path))
    assert trace, "the Fig. 14 workload issued no kernel calls"
    return trace


def _bench_hot_paths(benchmark, kernel_trace, backend):
    calls = benchmark.pedantic(
        _replay,
        setup=lambda: (_materialize(kernel_trace, backend), {}),
        rounds=25,
    )
    print(f"\n{calls} kernel calls replayed per round")


def test_fig14_kernel_hot_paths_python(benchmark, kernel_trace):
    _bench_hot_paths(benchmark, kernel_trace, _kernels._pure)


def test_fig14_kernel_hot_paths_native(benchmark, kernel_trace):
    if not _kernels.native_available():
        pytest.skip(f"native extension unavailable: "
                    f"{_kernels.native_import_error()}")
    _bench_hot_paths(benchmark, kernel_trace, _kernels._probe_native())


# ---------------------------------------------------------------------------
# end-to-end explore pair
# ---------------------------------------------------------------------------


def _explore_workload(harness, bundle, mqgs):
    for query, mqg in mqgs:
        explorer = BestFirstExplorer(
            LatticeSpace(mqg),
            bundle.gqbe.store,
            k=10,
            k_prime=harness.config.k_prime,
            excluded_tuples={query.query_tuple},
            max_rows=harness.config.max_join_rows,
            node_budget=harness.config.node_budget,
        )
        explorer.run()


def _bench_explore(benchmark, harness, mode):
    bundle = harness._bundle("freebase")
    mqgs = [
        (query, harness._mqg("freebase", query.query_tuple))
        for query in bundle.workload.queries
    ]
    previous = kernels.backend
    _kernels.select(mode)
    try:
        benchmark.pedantic(_explore_workload, (harness, bundle, mqgs),
                           rounds=10, warmup_rounds=1)
    finally:
        _kernels.select("on" if previous == "native" else "off")


def test_fig14_explore_python(benchmark, harness):
    _bench_explore(benchmark, harness, "off")


def test_fig14_explore_native(benchmark, harness):
    if not _kernels.native_available():
        pytest.skip(f"native extension unavailable: "
                    f"{_kernels.native_import_error()}")
    _bench_explore(benchmark, harness, "on")
