#!/usr/bin/env python
"""Functional SLO gate for the serving tier (CI's ``serve-slo`` job).

Runs the load generator at reduced scale against real servers and
hard-asserts *behavior*, not speed (shared CI runners are too noisy to
gate a latency median — percentiles land in the report artifact as
informational numbers):

1. **Equivalence** — the async frontend serves answers byte-identical
   to the threaded frontend for the same queries.
2. **Capacity** — a closed-loop run under the high-water mark completes
   with every request answered 200: nothing is shed, nothing errors.
3. **Overload** — an open-loop burst far past a tiny high-water mark is
   shed with 429s that all carry ``Retry-After``; zero 5xx responses
   and zero transport errors (no hung or dropped connections).
4. **Reconciliation** — ``/metrics`` parses as Prometheus text and its
   ``gqbe_http_requests_total{path="/query",...}`` deltas equal the
   loadgen's own per-status ground truth, and the queue_full shed
   counter equals the number of 429s observed on the wire.
5. **Ingest soak** — concurrent readers hammer a snapshot-backed
   server while ``POST /admin/ingest`` bursts land and an explicit
   ``POST /admin/compact`` folds the delta into a new generation.
   Every read is answered 200 (no 5xx, no transport errors — no torn
   swap), the ingest/compaction counters on ``/metrics`` reconcile
   with the wire, and the post-soak answers are identical to a system
   built from scratch over the merged edge set.

Usage::

    python benchmarks/check_serve_slo.py --json slo-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _scrape_metrics(host: str, port: int) -> dict:
    import http.client

    from repro.serving.metrics import parse_prometheus_text

    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    finally:
        connection.close()
    if response.status != 200:
        raise AssertionError(f"GET /metrics returned {response.status}")
    content_type = response.getheader("Content-Type", "")
    if not content_type.startswith("text/plain"):
        raise AssertionError(f"/metrics Content-Type is {content_type!r}")
    return parse_prometheus_text(body)


def _query_counts(samples: dict) -> dict[str, float]:
    """``{status code: count}`` for /query from a parsed exposition."""
    counts: dict[str, float] = {}
    for (name, labels), value in samples.items():
        if name != "gqbe_http_requests_total":
            continue
        label_map = dict(labels)
        if label_map.get("path") == "/query":
            counts[label_map["code"]] = value
    return counts


def _check(condition: bool, problems: list[str], message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        problems.append(message)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--concurrency", type=int, default=6)
    parser.add_argument("--json", default=None, help="write the report here")
    args = parser.parse_args()

    from repro.core.gqbe import GQBE
    from repro.datasets.workloads import build_freebase_workload
    from repro.serving.async_server import AsyncGQBEServer
    from repro.serving.loadgen import run_load
    from repro.serving.server import GQBEServer

    problems: list[str] = []
    report: dict = {"scale": args.scale, "timestamp": time.time()}

    print("building workload ...")
    workload = build_freebase_workload(scale=args.scale)
    system = GQBE(workload.dataset.graph)
    tuples = [list(query.query_tuple) for query in workload.queries]

    # ------------------------------------------------------------------
    # 1. equivalence: async answers == threaded answers
    # ------------------------------------------------------------------
    print("phase 1: frontend equivalence")
    import http.client

    def fetch(host: str, port: int, query: list) -> dict:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            connection.request(
                "POST",
                "/query",
                body=json.dumps({"tuple": query, "k": 10}).encode(),
                headers={"Content-Type": "application/json"},
            )
            return json.loads(connection.getresponse().read())
        finally:
            connection.close()

    threaded = GQBEServer(system, port=0, cache_size=0).start()
    async_server = AsyncGQBEServer(system, port=0, cache_size=0).start()
    try:
        for query in tuples:
            threaded_body = fetch(threaded.host, threaded.port, query)
            async_body = fetch(async_server.host, async_server.port, query)
            for field in ("answers", "mqg_edges", "nodes_evaluated"):
                _check(
                    async_body.get(field) == threaded_body.get(field),
                    problems,
                    f"{field} identical across frontends for {query}",
                )
    finally:
        threaded.stop()
        async_server.stop()

    # ------------------------------------------------------------------
    # 2. capacity: closed-loop under the high-water mark -> all 200
    #    (+ /metrics reconciliation on the same server)
    # ------------------------------------------------------------------
    print("phase 2: capacity (closed loop under high water)")
    server = AsyncGQBEServer(system, port=0, high_water=64).start()
    try:
        before = _query_counts(_scrape_metrics(server.host, server.port))
        capacity = run_load(
            server.host,
            server.port,
            tuples,
            requests=args.requests,
            concurrency=args.concurrency,
            timeout=120.0,
        )
        after = _query_counts(_scrape_metrics(server.host, server.port))
    finally:
        server.stop()
    report["capacity"] = capacity
    _check(
        capacity["status_counts"] == {"200": args.requests},
        problems,
        f"all {args.requests} capacity requests answered 200 "
        f"(got {capacity['status_counts']})",
    )
    _check(
        capacity["transport_errors"] == 0,
        problems,
        "zero transport errors under capacity",
    )
    deltas = {
        code: after.get(code, 0) - before.get(code, 0)
        for code in set(before) | set(after)
    }
    expected = {code: float(count) for code, count in capacity["status_counts"].items()}
    _check(
        deltas == expected,
        problems,
        f"/metrics /query deltas reconcile with loadgen ({deltas} == {expected})",
    )

    # ------------------------------------------------------------------
    # 3. overload: open-loop burst past a tiny high-water mark
    # ------------------------------------------------------------------
    print("phase 3: overload (open-loop burst past high water)")
    server = AsyncGQBEServer(system, port=0, high_water=2, cache_size=0).start()
    try:
        before = _query_counts(_scrape_metrics(server.host, server.port))
        overload = run_load(
            server.host,
            server.port,
            tuples,
            requests=max(40, args.requests),
            arrival="open",
            rate=400.0,
            timeout=120.0,
        )
        samples = _scrape_metrics(server.host, server.port)
        after = _query_counts(samples)
    finally:
        server.stop()
    report["overload"] = overload
    counts = overload["status_counts"]
    shed = counts.get("429", 0)
    _check(shed > 0, problems, f"overload burst was shed with 429s ({counts})")
    _check(
        overload["retry_after_seen"] == shed,
        problems,
        f"every 429 carried Retry-After ({overload['retry_after_seen']}/{shed})",
    )
    _check(
        not any(code.startswith("5") for code in counts),
        problems,
        f"zero 5xx under overload ({counts})",
    )
    _check(
        overload["transport_errors"] == 0,
        problems,
        "zero transport errors under overload (no hung/dropped connections)",
    )
    _check(
        counts.get("200", 0) + shed == overload["requests"],
        problems,
        "every overload request was answered (200 or 429)",
    )
    deltas = {
        code: after.get(code, 0) - before.get(code, 0)
        for code in set(before) | set(after)
    }
    expected = {code: float(count) for code, count in counts.items()}
    _check(
        deltas == expected,
        problems,
        f"/metrics /query deltas reconcile under overload ({deltas} == {expected})",
    )
    queue_full = samples.get(("gqbe_http_shed_total", (("reason", "queue_full"),)), 0)
    _check(
        queue_full == shed,
        problems,
        f"queue_full shed counter equals observed 429s ({queue_full} == {shed})",
    )

    # ------------------------------------------------------------------
    # 4. ingest soak: writes + compaction racing reads on a
    #    snapshot-backed server
    # ------------------------------------------------------------------
    print("phase 4: ingest soak (writes + compaction racing reads)")
    import tempfile
    import threading

    from repro.storage.snapshot import GraphStore

    def post(host: str, port: int, path: str, payload: dict) -> tuple[int, dict]:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            connection.request(
                "POST",
                path,
                body=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    soak_query = tuples[0]
    bursts = [
        [
            [f"SoakEntity_{burst}_{index}", "soak_edge_of", soak_query[0]]
            for index in range(4)
        ]
        for burst in range(6)
    ]
    with tempfile.TemporaryDirectory() as scratch:
        snapshot_path = Path(scratch) / "soak.snapdir3"
        GraphStore.build(workload.dataset.graph).save(snapshot_path, format="v3")
        server = AsyncGQBEServer.from_snapshot(
            snapshot_path, port=0, high_water=64
        ).start()
        read_statuses: dict[str, int] = {}
        status_lock = threading.Lock()
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                try:
                    status, _ = post(
                        server.host,
                        server.port,
                        "/query",
                        {"tuple": soak_query, "k": 10},
                    )
                    key = str(status)
                except (OSError, http.client.HTTPException, ValueError):
                    key = "transport_error"
                with status_lock:
                    read_statuses[key] = read_statuses.get(key, 0) + 1

        readers = [threading.Thread(target=hammer) for _ in range(3)]
        applied = 0
        try:
            for thread in readers:
                thread.start()
            for burst in bursts:
                status, body = post(
                    server.host, server.port, "/admin/ingest", {"triples": burst}
                )
                _check(
                    status == 200,
                    problems,
                    f"ingest burst accepted under read load (status {status})",
                )
                applied += body.get("applied", 0)
            status, compacted = post(
                server.host, server.port, "/admin/compact", {}
            )
            _check(
                status == 200,
                problems,
                f"compaction succeeded under read load (status {status})",
            )
            # Let the readers race the freshly swapped generation too.
            time.sleep(0.25)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        try:
            samples = _scrape_metrics(server.host, server.port)
            status, final_body = post(
                server.host,
                server.port,
                "/query",
                {"tuple": soak_query, "k": 10},
            )
        finally:
            server.stop()
        report["ingest_soak"] = {
            "read_statuses": read_statuses,
            "applied": applied,
            "compacted": compacted,
        }
        total_triples = sum(len(burst) for burst in bursts)
        _check(
            applied == total_triples,
            problems,
            f"every soak triple applied ({applied}/{total_triples})",
        )
        _check(
            set(read_statuses) == {"200"},
            problems,
            f"every racing read answered 200 ({read_statuses})",
        )
        _check(
            str(compacted.get("snapshot", "")).endswith(".gen1"),
            problems,
            f"compaction wrote generation 1 ({compacted.get('snapshot')})",
        )
        _check(
            samples.get(("gqbe_ingest_requests_total", ()), 0) == len(bursts),
            problems,
            f"ingest request counter reconciles ({len(bursts)} bursts)",
        )
        _check(
            samples.get(
                ("gqbe_ingest_triples_total", (("result", "applied"),)), 0
            )
            == total_triples,
            problems,
            "applied-triple counter reconciles",
        )
        _check(
            samples.get(("gqbe_compactions_total", ()), 0) == 1,
            problems,
            "compaction counter reconciles",
        )
        _check(
            samples.get(("gqbe_delta_edges", ()), -1) == 0,
            problems,
            "delta gauge returns to zero after the fold",
        )
        merged = workload.dataset.graph.copy()
        for subject, label, obj in (t for burst in bursts for t in burst):
            merged.add_edge(subject, label, obj)
        reference = GQBE(merged).query(tuple(soak_query), k=10)
        _check(
            status == 200
            and [answer["entities"] for answer in final_body["answers"]]
            == [list(answer.entities) for answer in reference.answers],
            problems,
            "post-soak answers equal a from-scratch merged build",
        )

    # ------------------------------------------------------------------
    # report artifact (latency stays informational)
    # ------------------------------------------------------------------
    latency = capacity["latency_ms"]
    print(
        f"capacity latency ms (informational): p50 {latency['p50']:.2f}  "
        f"p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}"
    )
    report["problems"] = problems
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.json}")

    if problems:
        print(f"\n{len(problems)} SLO violation(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nserve SLO: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
