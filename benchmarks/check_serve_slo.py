#!/usr/bin/env python
"""Functional SLO gate for the serving tier (CI's ``serve-slo`` job).

Runs the load generator at reduced scale against real servers and
hard-asserts *behavior*, not speed (shared CI runners are too noisy to
gate a latency median — percentiles land in the report artifact as
informational numbers):

1. **Equivalence** — the async frontend serves answers byte-identical
   to the threaded frontend for the same queries.
2. **Capacity** — a closed-loop run under the high-water mark completes
   with every request answered 200: nothing is shed, nothing errors.
3. **Overload** — an open-loop burst far past a tiny high-water mark is
   shed with 429s that all carry ``Retry-After``; zero 5xx responses
   and zero transport errors (no hung or dropped connections).
4. **Reconciliation** — ``/metrics`` parses as Prometheus text and its
   ``gqbe_http_requests_total{path="/query",...}`` deltas equal the
   loadgen's own per-status ground truth, and the queue_full shed
   counter equals the number of 429s observed on the wire.

Usage::

    python benchmarks/check_serve_slo.py --json slo-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _scrape_metrics(host: str, port: int) -> dict:
    import http.client

    from repro.serving.metrics import parse_prometheus_text

    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    finally:
        connection.close()
    if response.status != 200:
        raise AssertionError(f"GET /metrics returned {response.status}")
    content_type = response.getheader("Content-Type", "")
    if not content_type.startswith("text/plain"):
        raise AssertionError(f"/metrics Content-Type is {content_type!r}")
    return parse_prometheus_text(body)


def _query_counts(samples: dict) -> dict[str, float]:
    """``{status code: count}`` for /query from a parsed exposition."""
    counts: dict[str, float] = {}
    for (name, labels), value in samples.items():
        if name != "gqbe_http_requests_total":
            continue
        label_map = dict(labels)
        if label_map.get("path") == "/query":
            counts[label_map["code"]] = value
    return counts


def _check(condition: bool, problems: list[str], message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        problems.append(message)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--concurrency", type=int, default=6)
    parser.add_argument("--json", default=None, help="write the report here")
    args = parser.parse_args()

    from repro.core.gqbe import GQBE
    from repro.datasets.workloads import build_freebase_workload
    from repro.serving.async_server import AsyncGQBEServer
    from repro.serving.loadgen import run_load
    from repro.serving.server import GQBEServer

    problems: list[str] = []
    report: dict = {"scale": args.scale, "timestamp": time.time()}

    print("building workload ...")
    workload = build_freebase_workload(scale=args.scale)
    system = GQBE(workload.dataset.graph)
    tuples = [list(query.query_tuple) for query in workload.queries]

    # ------------------------------------------------------------------
    # 1. equivalence: async answers == threaded answers
    # ------------------------------------------------------------------
    print("phase 1: frontend equivalence")
    import http.client

    def fetch(host: str, port: int, query: list) -> dict:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            connection.request(
                "POST",
                "/query",
                body=json.dumps({"tuple": query, "k": 10}).encode(),
                headers={"Content-Type": "application/json"},
            )
            return json.loads(connection.getresponse().read())
        finally:
            connection.close()

    threaded = GQBEServer(system, port=0, cache_size=0).start()
    async_server = AsyncGQBEServer(system, port=0, cache_size=0).start()
    try:
        for query in tuples:
            threaded_body = fetch(threaded.host, threaded.port, query)
            async_body = fetch(async_server.host, async_server.port, query)
            for field in ("answers", "mqg_edges", "nodes_evaluated"):
                _check(
                    async_body.get(field) == threaded_body.get(field),
                    problems,
                    f"{field} identical across frontends for {query}",
                )
    finally:
        threaded.stop()
        async_server.stop()

    # ------------------------------------------------------------------
    # 2. capacity: closed-loop under the high-water mark -> all 200
    #    (+ /metrics reconciliation on the same server)
    # ------------------------------------------------------------------
    print("phase 2: capacity (closed loop under high water)")
    server = AsyncGQBEServer(system, port=0, high_water=64).start()
    try:
        before = _query_counts(_scrape_metrics(server.host, server.port))
        capacity = run_load(
            server.host,
            server.port,
            tuples,
            requests=args.requests,
            concurrency=args.concurrency,
            timeout=120.0,
        )
        after = _query_counts(_scrape_metrics(server.host, server.port))
    finally:
        server.stop()
    report["capacity"] = capacity
    _check(
        capacity["status_counts"] == {"200": args.requests},
        problems,
        f"all {args.requests} capacity requests answered 200 "
        f"(got {capacity['status_counts']})",
    )
    _check(
        capacity["transport_errors"] == 0,
        problems,
        "zero transport errors under capacity",
    )
    deltas = {
        code: after.get(code, 0) - before.get(code, 0)
        for code in set(before) | set(after)
    }
    expected = {code: float(count) for code, count in capacity["status_counts"].items()}
    _check(
        deltas == expected,
        problems,
        f"/metrics /query deltas reconcile with loadgen ({deltas} == {expected})",
    )

    # ------------------------------------------------------------------
    # 3. overload: open-loop burst past a tiny high-water mark
    # ------------------------------------------------------------------
    print("phase 3: overload (open-loop burst past high water)")
    server = AsyncGQBEServer(system, port=0, high_water=2, cache_size=0).start()
    try:
        before = _query_counts(_scrape_metrics(server.host, server.port))
        overload = run_load(
            server.host,
            server.port,
            tuples,
            requests=max(40, args.requests),
            arrival="open",
            rate=400.0,
            timeout=120.0,
        )
        samples = _scrape_metrics(server.host, server.port)
        after = _query_counts(samples)
    finally:
        server.stop()
    report["overload"] = overload
    counts = overload["status_counts"]
    shed = counts.get("429", 0)
    _check(shed > 0, problems, f"overload burst was shed with 429s ({counts})")
    _check(
        overload["retry_after_seen"] == shed,
        problems,
        f"every 429 carried Retry-After ({overload['retry_after_seen']}/{shed})",
    )
    _check(
        not any(code.startswith("5") for code in counts),
        problems,
        f"zero 5xx under overload ({counts})",
    )
    _check(
        overload["transport_errors"] == 0,
        problems,
        "zero transport errors under overload (no hung/dropped connections)",
    )
    _check(
        counts.get("200", 0) + shed == overload["requests"],
        problems,
        "every overload request was answered (200 or 429)",
    )
    deltas = {
        code: after.get(code, 0) - before.get(code, 0)
        for code in set(before) | set(after)
    }
    expected = {code: float(count) for code, count in counts.items()}
    _check(
        deltas == expected,
        problems,
        f"/metrics /query deltas reconcile under overload ({deltas} == {expected})",
    )
    queue_full = samples.get(("gqbe_http_shed_total", (("reason", "queue_full"),)), 0)
    _check(
        queue_full == shed,
        problems,
        f"queue_full shed counter equals observed 429s ({queue_full} == {shed})",
    )

    # ------------------------------------------------------------------
    # report artifact (latency stays informational)
    # ------------------------------------------------------------------
    latency = capacity["latency_ms"]
    print(
        f"capacity latency ms (informational): p50 {latency['p50']:.2f}  "
        f"p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}"
    )
    report["problems"] = problems
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.json}")

    if problems:
        print(f"\n{len(problems)} SLO violation(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nserve SLO: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
