"""Table II — case study: top-3 answers for selected queries.

The paper lists the top-3 GQBE answers for F1, F18 and F19.  We print the
same layout for the analogue queries over the synthetic dataset; the
expectation is that the top answers come from the query's own ground-truth
table (e.g. other founder-company pairs for the F18 analogue).
"""

from __future__ import annotations

from repro.evaluation.reporting import format_answer_list


def test_table2_case_study(harness, benchmark):
    results = benchmark(harness.table2_case_study)
    print()
    print("Table II — case study: top-3 answers")
    workload = harness.freebase_workload()
    hits = 0
    total = 0
    for query_id, answers in results.items():
        print(format_answer_list(query_id, answers))
        truth = set(map(tuple, workload.query(query_id).ground_truth))
        total += len(answers)
        hits += sum(1 for answer in answers if answer in truth)
    assert results
    # Most case-study answers should come from the ground-truth tables.
    assert hits >= total / 2
