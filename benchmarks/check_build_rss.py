#!/usr/bin/env python
"""CI gate: the streaming build's peak RSS sits under its memory budget.

``gqbe build-index --streaming`` promises bounded peak memory: working
buffers scale with ``--memory-budget-mb``, not with the dump (see
docs/building.md).  This script generates a synthetic dump at least
``--min-dump-ratio`` times the budget, builds it twice in fresh child
processes — streaming under the budget, then in-memory — and
hard-asserts the separation on each child's own ``ru_maxrss``:

* the streaming build's peak RSS, measured *incrementally over the
  import floor* (interpreter + numpy + repro, probed by an identical
  child that only imports), stays **under** the budget;
* the in-memory build's incremental peak **exceeds** the budget (if it
  did not, the gate would be vacuous at this scale);
* the two outputs are byte-identical (manifest equality is sufficient:
  the manifest records every shard's SHA-256).

Run from the repository root (CI's tests job does)::

    python benchmarks/check_build_rss.py

Exits 0 with a notice where ``resource`` rusage probes are unavailable.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

_FLOOR_PROBE = (
    "import resource, numpy, repro.cli, repro.storage.build;"
    "print('PEAK', resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)"
)
_BUILD_PROBE = (
    "import resource, sys;"
    "from repro.cli import main;"
    "rc = main(sys.argv[1:]);"
    "print('PEAK', resource.getrusage(resource.RUSAGE_SELF).ru_maxrss);"
    "sys.exit(rc)"
)


def _child_peak_bytes(command: list[str]) -> int:
    """Run a probe child; return its self-reported peak RSS in bytes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(command, env=env, capture_output=True, text=True)
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        raise SystemExit(f"probe child failed: {' '.join(command[:3])}...")
    for line in result.stdout.splitlines():
        if line.startswith("PEAK "):
            kilobytes = int(line.split()[1])
            # ru_maxrss is kilobytes on Linux, bytes on macOS.
            return kilobytes if sys.platform == "darwin" else kilobytes * 1024
    raise SystemExit("probe child printed no PEAK line")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=100.0,
        help="freebase workload scale; must make the in-memory build's "
        "incremental RSS clearly exceed the budget (default 100.0, "
        "~440k edges, ~17 MB dump)",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=int,
        default=4,
        help="streaming budget to enforce (default 4)",
    )
    parser.add_argument(
        "--min-dump-ratio",
        type=float,
        default=4.0,
        help="required dump-size / budget ratio so the bound is "
        "non-trivial (default 4.0)",
    )
    args = parser.parse_args(argv)

    try:
        import resource  # noqa: F401
    except ImportError:
        print("resource rusage probes unavailable on this platform; skipping")
        return 0

    from repro.datasets.synthetic import FreebaseLikeGenerator
    from repro.graph.triples import write_triples

    budget_bytes = args.memory_budget_mb * 1e6
    graph = FreebaseLikeGenerator(seed=7, scale=args.scale).generate().graph
    with tempfile.TemporaryDirectory(prefix="gqbe-build-rss-") as scratch:
        dump = Path(scratch) / "dump.tsv"
        write_triples(graph.edges, dump)
        dump_bytes = dump.stat().st_size
        print(
            f"dump: freebase scale {args.scale} ({graph.num_edges} edges, "
            f"{graph.num_nodes} nodes, {dump_bytes / 1e6:.1f} MB); "
            f"budget {args.memory_budget_mb} MB"
        )
        if dump_bytes < args.min_dump_ratio * budget_bytes:
            print(
                f"FAIL: dump is only {dump_bytes / budget_bytes:.1f}x the "
                f"budget (need >= {args.min_dump_ratio}x); raise --scale"
            )
            return 1

        floor = _child_peak_bytes([sys.executable, "-c", _FLOOR_PROBE])
        print(f"import floor (interpreter + numpy + repro): {floor / 1e6:.1f} MB")

        streamed = Path(scratch) / "streamed"
        streaming_peak = _child_peak_bytes(
            [
                sys.executable,
                "-c",
                _BUILD_PROBE,
                "build-index",
                str(dump),
                str(streamed),
                "--format",
                "v3",
                "--streaming",
                "--memory-budget-mb",
                str(args.memory_budget_mb),
                "--quiet",
            ]
        )
        in_memory = Path(scratch) / "in_memory"
        in_memory_peak = _child_peak_bytes(
            [
                sys.executable,
                "-c",
                _BUILD_PROBE,
                "build-index",
                str(dump),
                str(in_memory),
                "--format",
                "v3",
                "--quiet",
            ]
        )
        streaming_incr = streaming_peak - floor
        in_memory_incr = in_memory_peak - floor
        print(
            f"streaming: peak {streaming_peak / 1e6:.1f} MB "
            f"(incremental {streaming_incr / 1e6:.1f} MB)\n"
            f"in-memory: peak {in_memory_peak / 1e6:.1f} MB "
            f"(incremental {in_memory_incr / 1e6:.1f} MB)"
        )

        failures = []
        if streaming_incr >= budget_bytes:
            failures.append(
                f"streaming incremental peak {streaming_incr / 1e6:.1f} MB "
                f"is not under the {args.memory_budget_mb} MB budget"
            )
        if in_memory_incr <= budget_bytes:
            failures.append(
                f"in-memory incremental peak {in_memory_incr / 1e6:.1f} MB "
                "does not exceed the budget — the gate is vacuous at this "
                "scale; raise --scale"
            )
        streamed_manifest = (streamed / "MANIFEST.json").read_bytes()
        in_memory_manifest = (in_memory / "MANIFEST.json").read_bytes()
        if streamed_manifest != in_memory_manifest:
            failures.append(
                "streaming and in-memory manifests differ — the builds are "
                "no longer byte-identical (the manifest hashes every shard)"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
    print("ok: streaming build is memory-bounded and byte-identical at scale")
    return 0


if __name__ == "__main__":
    sys.exit(main())
