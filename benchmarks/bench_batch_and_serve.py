"""Batched multi-query execution vs sequential queries (Fig. 14 workload).

Two workload shapes, both answering with byte-identical ranked results
(pinned by ``tests/test_batch_equivalence.py``):

* the **20 unique queries** of the Fig. 14 workload — here the batch
  arena can only share what the queries' MQGs actually overlap on
  (~5-10% of lattice evaluations on the synthetic graphs, since the 20
  ground-truth regions are nearly disjoint), so batch ≈ sequential;
* the **serving window**: the same workload arriving from several
  concurrent users (duplicates in one batching window) — duplicate
  collapse makes ``query_batch`` several times faster than the
  sequential loop, which is the case the serve layer's batcher exists
  for.

A third benchmark times one steady-state serve-layer load pass over HTTP
(threaded server + batcher + answer cache) to keep the full frontend
under the regression gate.  The absolute serve-throughput artifact for CI
comes from ``gqbe bench-serve`` (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE

#: Concurrent users replaying the Fig. 14 workload inside one window.
WINDOW_USERS = 3


@pytest.fixture(scope="module")
def batch_system(harness):
    """A dedicated system + the Fig. 14 query tuples (harness scale)."""
    workload = harness.freebase_workload()
    config = GQBEConfig(
        mqg_size=10, k_prime=25, node_budget=1000, max_join_rows=100_000
    )
    system = GQBE(workload.dataset.graph, config=config)
    tuples = [query.query_tuple for query in workload.queries]
    # Warm the table-level lazy indexes so both variants measure
    # steady-state query work, not first-touch index builds.
    for query_tuple in tuples:
        system.query(query_tuple, k=10)
    return system, tuples


def test_bench_fig14_sequential_queries(batch_system, benchmark):
    system, tuples = batch_system
    results = benchmark(lambda: [system.query(t, k=10) for t in tuples])
    assert len(results) == 20 and all(r.answers for r in results)


def test_bench_fig14_query_batch(batch_system, benchmark):
    system, tuples = batch_system
    results = benchmark(system.query_batch, tuples, 10)
    assert len(results) == 20 and all(r.answers for r in results)


def test_bench_fig14_serving_window_sequential(batch_system, benchmark):
    system, tuples = batch_system
    window = tuples * WINDOW_USERS
    results = benchmark(lambda: [system.query(t, k=10) for t in window])
    assert len(results) == 20 * WINDOW_USERS


def test_bench_fig14_serving_window_query_batch(batch_system, benchmark):
    system, tuples = batch_system
    window = tuples * WINDOW_USERS
    results = benchmark(system.query_batch, window, 10)
    assert len(results) == 20 * WINDOW_USERS
    # The window's duplicates collapse to 20 evaluations; answers fan out.
    assert all(results[i].answers for i in range(len(window)))


def test_bench_serve_layer_load_pass(batch_system, benchmark):
    """One steady-state HTTP load pass through batcher + answer cache."""
    from repro.serving.loadgen import run_load
    from repro.serving.server import GQBEServer

    system, tuples = batch_system
    server = GQBEServer(
        system, port=0, batch_window_seconds=0.001, cache_size=256
    ).start()
    try:
        # Warm pass fills the answer cache; the measured pass is the
        # cache-hot serving hot path.
        run_load(server.host, server.port, tuples, k=10, requests=20, concurrency=4)
        report = benchmark(
            run_load,
            server.host,
            server.port,
            tuples,
            10,
            40,
            4,
        )
        assert report["errors"] == 0 and report["completed"] == 40
    finally:
        server.stop()
