"""Batched multi-query execution vs sequential queries (Fig. 14 workload).

Two workload shapes, both answering with byte-identical ranked results
(pinned by ``tests/test_batch_equivalence.py``):

* the **20 unique queries** of the Fig. 14 workload — here the batch
  arena can only share what the queries' MQGs actually overlap on
  (~5-10% of lattice evaluations on the synthetic graphs, since the 20
  ground-truth regions are nearly disjoint), so batch ≈ sequential;
* the **serving window**: the same workload arriving from several
  concurrent users (duplicates in one batching window) — duplicate
  collapse makes ``query_batch`` several times faster than the
  sequential loop, which is the case the serve layer's batcher exists
  for.

A third benchmark times one steady-state serve-layer load pass over HTTP
(threaded server + batcher + answer cache) to keep the full frontend
under the regression gate, and a fourth runs the same pass through the
asyncio frontend (admission control + metrics on the request path) so a
regression in the event-loop hot path is caught next to its threaded
twin.  The absolute serve-throughput artifact for CI comes from
``gqbe bench-serve`` (see ``.github/workflows/ci.yml``).

PR 4 additions: the **v2 sharded snapshot warm start** (manifest-only
open — no section deserialization, no shard maps) and the **pooled
batch** path (the Fig. 14 window sharded across a snapshot-backed
process pool).  Note the pooled numbers are core-count-bound: on a
single-core runner the pool pays IPC for no parallelism; with N cores
the window parallelizes up to min(N, workers)×.

PR 5 additions: the **v3 warm start** pair — v3 maps the vocabulary
(string arena) and graph (CSR) instead of pickling them, so the
first-query path swaps graph-section deserialization for two mmaps.
"""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.storage.snapshot import GraphStore

#: Concurrent users replaying the Fig. 14 workload inside one window.
WINDOW_USERS = 3

#: Process-pool width for the pooled benchmarks.
POOL_WORKERS = 4


@pytest.fixture(scope="module")
def batch_system(harness):
    """A dedicated system + the Fig. 14 query tuples (harness scale)."""
    workload = harness.freebase_workload()
    config = GQBEConfig(
        mqg_size=10, k_prime=25, node_budget=1000, max_join_rows=100_000
    )
    system = GQBE(workload.dataset.graph, config=config)
    tuples = [query.query_tuple for query in workload.queries]
    # Warm the table-level lazy indexes so both variants measure
    # steady-state query work, not first-touch index builds.
    for query_tuple in tuples:
        system.query(query_tuple, k=10)
    return system, tuples


def test_bench_fig14_sequential_queries(batch_system, benchmark):
    system, tuples = batch_system
    results = benchmark(lambda: [system.query(t, k=10) for t in tuples])
    assert len(results) == 20 and all(r.answers for r in results)


def test_bench_fig14_query_batch(batch_system, benchmark):
    system, tuples = batch_system
    results = benchmark(system.query_batch, tuples, 10)
    assert len(results) == 20 and all(r.answers for r in results)


def test_bench_fig14_serving_window_sequential(batch_system, benchmark):
    system, tuples = batch_system
    window = tuples * WINDOW_USERS
    results = benchmark(lambda: [system.query(t, k=10) for t in window])
    assert len(results) == 20 * WINDOW_USERS


def test_bench_fig14_serving_window_query_batch(batch_system, benchmark):
    system, tuples = batch_system
    window = tuples * WINDOW_USERS
    results = benchmark(system.query_batch, window, 10)
    assert len(results) == 20 * WINDOW_USERS
    # The window's duplicates collapse to 20 evaluations; answers fan out.
    assert all(results[i].answers for i in range(len(window)))


@pytest.fixture(scope="module")
def v2_snapshot(batch_system, tmp_path_factory):
    """The Fig. 14 workload graph saved as a v2 sharded snapshot."""
    system, _tuples = batch_system
    directory = tmp_path_factory.mktemp("snapv2") / "workload.snapdir"
    system.graph_store.save(directory, format="v2")
    return directory


def test_bench_v2_warm_start(v2_snapshot, benchmark):
    """Opening a v2 snapshot: manifest read + system wiring, nothing else.

    The contract being timed: no section pickles load and no label shard
    is mapped until a query needs them.
    """

    def warm_start():
        system = GQBE.from_snapshot(v2_snapshot)
        return system.graph_store.lazy_report()

    report = benchmark(warm_start)
    assert report["tables_opened"] == 0
    assert report["sections_loaded"] == []


def test_bench_v2_warm_start_first_query(v2_snapshot, batch_system, benchmark):
    """v2 cold open through the first answered query (partial shard load)."""
    _system, tuples = batch_system
    config = GQBEConfig(
        mqg_size=10, k_prime=25, node_budget=1000, max_join_rows=100_000
    )

    def open_and_query():
        system = GQBE.from_snapshot(v2_snapshot, config=config)
        result = system.query(tuples[0], k=10)
        return system.graph_store.lazy_report(), result

    report, result = benchmark(open_and_query)
    assert result.answers
    # Partial load: the query's plan probes a few labels, not all 60+.
    assert 0 < report["tables_opened"] < report["tables_total"]


@pytest.fixture(scope="module")
def v3_snapshot(batch_system, tmp_path_factory):
    """The Fig. 14 workload graph saved as a v3 sharded snapshot
    (mapped vocabulary arena + graph CSR on top of the v2 table shards)."""
    system, _tuples = batch_system
    directory = tmp_path_factory.mktemp("snapv3") / "workload.snapdir"
    system.graph_store.save(directory, format="v3")
    return directory


def test_bench_v3_warm_start(v3_snapshot, benchmark):
    """Opening a v3 snapshot: manifest read + system wiring, nothing else.

    Same contract as the v2 warm start — no section pickles, no shard
    maps, no vocabulary/graph arena until a query needs them.
    """

    def warm_start():
        system = GQBE.from_snapshot(v3_snapshot)
        return system.graph_store.lazy_report()

    report = benchmark(warm_start)
    assert report["format"] == "v3"
    assert report["tables_opened"] == 0
    assert report["sections_loaded"] == []


def test_bench_v3_warm_start_first_query(v3_snapshot, batch_system, benchmark):
    """v3 cold open through the first answered query.

    Versus v2 this maps the vocabulary arena and graph CSR instead of
    unpickling them — the graph section deserialization drops out of the
    first-query latency entirely.
    """
    _system, tuples = batch_system
    config = GQBEConfig(
        mqg_size=10, k_prime=25, node_budget=1000, max_join_rows=100_000
    )

    def open_and_query():
        system = GQBE.from_snapshot(v3_snapshot, config=config)
        result = system.query(tuples[0], k=10)
        return system.graph_store.lazy_report(), result

    report, result = benchmark(open_and_query)
    assert result.answers
    assert 0 < report["tables_opened"] < report["tables_total"]
    assert "vocabulary" in report["sections_loaded"]
    assert "graph" in report["sections_loaded"]


@pytest.fixture(scope="module")
def worker_pool(v2_snapshot, batch_system):
    """A warm snapshot-backed process pool (spawn + shard maps prepaid)."""
    from repro.serving.pool import WorkerPool

    _system, tuples = batch_system
    config = GQBEConfig(
        mqg_size=10, k_prime=25, node_budget=1000, max_join_rows=100_000
    )
    pool = WorkerPool(
        workers=POOL_WORKERS, snapshot_path=v2_snapshot, config=config
    )
    pool.query_batch(tuples, k=10)  # fork workers, map shards, warm memos
    yield pool
    pool.close()


def test_bench_fig14_pooled_query_batch(worker_pool, batch_system, benchmark):
    """The Fig. 14 window sharded across the process pool.

    Compare against ``test_bench_fig14_query_batch`` (inline): the delta
    is IPC + result pickling vs min(cores, workers)× parallel lattice
    exploration.
    """
    _system, tuples = batch_system
    results = benchmark(worker_pool.query_batch, tuples, 10)
    assert len(results) == 20 and all(r.answers for r in results)


def test_bench_serve_layer_load_pass(batch_system, benchmark):
    """One steady-state HTTP load pass through batcher + answer cache."""
    from repro.serving.loadgen import run_load
    from repro.serving.server import GQBEServer

    system, tuples = batch_system
    server = GQBEServer(
        system, port=0, batch_window_seconds=0.001, cache_size=256
    ).start()
    try:
        # Warm pass fills the answer cache; the measured pass is the
        # cache-hot serving hot path.
        run_load(server.host, server.port, tuples, k=10, requests=20, concurrency=4)
        report = benchmark(
            run_load,
            server.host,
            server.port,
            tuples,
            10,
            40,
            4,
        )
        assert report["errors"] == 0 and report["completed"] == 40
    finally:
        server.stop()


def test_bench_async_serve_layer_load_pass(batch_system, benchmark):
    """The same cache-hot load pass through the asyncio frontend.

    Measured against ``test_bench_serve_layer_load_pass``: the delta is
    the event loop + admission control (gate, metrics, per-stage timers)
    replacing thread-per-connection dispatch on the hot path.
    """
    from repro.serving.async_server import AsyncGQBEServer
    from repro.serving.loadgen import run_load

    system, tuples = batch_system
    server = AsyncGQBEServer(
        system, port=0, batch_window_seconds=0.001, cache_size=256
    ).start()
    try:
        run_load(server.host, server.port, tuples, k=10, requests=20, concurrency=4)
        report = benchmark(
            run_load,
            server.host,
            server.port,
            tuples,
            10,
            40,
            4,
        )
        assert report["errors"] == 0 and report["completed"] == 40
    finally:
        server.stop()
