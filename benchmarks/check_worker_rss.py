#!/usr/bin/env python
"""CI gate: a v3 snapshot worker's structural RSS sits strictly below v2's.

The v3 format maps the vocabulary (string arena), graph (CSR) and
participation-statistics counts that v2 still pickles per worker, so a
fresh process that opens a v3 snapshot and touches every section and
shard must carry strictly less resident memory than the same process
over the equivalent v2 snapshot.

The comparison must run at a scale where the mapped-sections delta
dwarfs ``VmRSS`` measurement noise (allocator arenas, procfs page
granularity — roughly ±0.1 MB between identical runs).  At the
bench-serve smoke scale of 0.25 the delta is well under 0.1 MB, which
makes a strict comparison a coin flip; at the default ``--scale 3.0``
it is ~4.3 MB (vocabulary + graph + statistics), and the gate is
meaningful.  The bench-serve artifacts keep
recording the (informational) figures at their own scale; this script
is the enforced check::

    python benchmarks/check_worker_rss.py --scale 3.0

Exit status 1 when the v3 figure is not below the v2 figure by at least
``--min-delta-mb`` (default 0.5 MB — far above noise, far below the real
delta).  Exits 0 with a notice where the probes are unavailable (no
procfs).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=3.0,
        help="freebase workload scale; the structural delta must dominate "
        "RSS noise, which needs a non-toy graph (default 3.0)",
    )
    parser.add_argument(
        "--min-delta-mb",
        type=float,
        default=0.5,
        help="required v2-minus-v3 margin in MB (default 0.5)",
    )
    args = parser.parse_args(argv)

    from repro.datasets.workloads import build_freebase_workload
    from repro.serving.pool import (
        interpreter_floor_rss_bytes,
        snapshot_worker_structural_rss_bytes,
    )
    from repro.storage.snapshot import GraphStore

    floor = interpreter_floor_rss_bytes()
    if floor is None:
        print("RSS probes unavailable on this platform (no procfs); skipping")
        return 0

    workload = build_freebase_workload(seed=7, scale=args.scale)
    graph = workload.dataset.graph
    print(
        f"workload: freebase scale {args.scale} "
        f"({graph.num_nodes} nodes, {graph.num_edges} edges); "
        f"interpreter+numpy floor {floor / 1e6:.1f} MB"
    )
    figures = {}
    bundle = GraphStore.build(graph)  # one offline build, saved twice
    with tempfile.TemporaryDirectory(prefix="gqbe-rss-gate-") as scratch:
        for format in ("v2", "v3"):
            path = Path(scratch) / f"workload.{format}"
            bundle.save(path, format=format)
            # strict: a broken probe must fail the gate loudly (procfs
            # exists — the floor probe above succeeded), never skip it.
            rss = snapshot_worker_structural_rss_bytes(path, strict=True)
            figures[format] = rss - floor
            print(
                f"{format}: structural worker RSS {rss / 1e6:.2f} MB "
                f"(incremental {figures[format] / 1e6:.2f} MB)"
            )

    delta = figures["v2"] - figures["v3"]
    print(f"v2 - v3 incremental delta: {delta / 1e6:.2f} MB")
    if delta < args.min_delta_mb * 1e6:
        print(
            f"FAIL: v3 is not below v2 by at least {args.min_delta_mb} MB — "
            "the mapped vocabulary/graph sections regressed"
        )
        return 1
    print("ok: v3 workers exclude the vocabulary, graph and statistics sections")
    return 0


if __name__ == "__main__":
    sys.exit(main())
