"""Figure 14 — query processing time of GQBE, NESS and Baseline.

The paper plots per-query processing time (log scale) with the MQG edge
count under each query id.  GQBE beats NESS on most queries and the
Baseline suffers from its exhaustive lattice evaluation.  The shapes to
check here: GQBE's total processing time does not exceed the Baseline's,
and per-query times are printed for comparison with the paper.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table, summarize_ratio


def test_fig14_query_processing_time(harness, benchmark):
    rows = benchmark(harness.figure14_15_efficiency, 10)
    print()
    print(
        format_table(
            rows,
            columns=[
                "query",
                "mqg_edges",
                "gqbe_seconds",
                "ness_seconds",
                "baseline_seconds",
            ],
            title="Figure 14 — query processing time (seconds)",
            float_digits=4,
        )
    )
    gqbe_total = sum(row["gqbe_seconds"] for row in rows)
    baseline_total = sum(row["baseline_seconds"] for row in rows)
    print(summarize_ratio("baseline_time / gqbe_time", baseline_total, max(gqbe_total, 1e-9)))
    assert len(rows) == 20
    # All queries finish in milliseconds here, so wall-clock comparisons are
    # noise-dominated (see EXPERIMENTS.md); assert only that GQBE stays in
    # the same order of magnitude as the exhaustive baseline and that it
    # never does more join work (lattice nodes) than the baseline.
    assert gqbe_total <= max(baseline_total, 0.01) * 5
    for row in rows:
        assert row["gqbe_nodes_evaluated"] <= row["baseline_nodes_evaluated"]
