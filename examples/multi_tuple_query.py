"""Multi-tuple queries: merging MQGs to sharpen the query intent (Sec. III-D).

A single example tuple can be ambiguous: ``<Jerry Yang, Yahoo!>`` could mean
"founders of technology companies", "people educated at Stanford", or
"people living in San Jose".  Providing a second example tuple lets GQBE
up-weight the relationships the examples share.

This script runs the same query with one and with two example tuples over
the synthetic Freebase-like graph and compares the precision of the answers
against the generator's ground truth.

Run with::

    python examples/multi_tuple_query.py
"""

from __future__ import annotations

from repro import GQBE, GQBEConfig
from repro.datasets.workloads import build_freebase_workload
from repro.evaluation.metrics import precision_at_k

K = 15


def main() -> None:
    workload = build_freebase_workload(seed=7, scale=0.5)
    graph = workload.dataset.graph
    print(f"Synthetic Freebase-like graph: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges, {graph.num_labels} labels")

    system = GQBE(graph, config=GQBEConfig(mqg_size=10, k_prime=25))

    query = workload.query("F18").with_extra_tuples(1)
    tuple1, tuple2 = query.query_tuples
    truth = query.ground_truth

    single = system.query(tuple1, k=K)
    merged = system.query_multi([tuple1, tuple2], k=K)

    print(f"\nExample tuple 1: <{', '.join(tuple1)}>")
    print(f"Example tuple 2: <{', '.join(tuple2)}>")

    for label, result in (("single tuple", single), ("merged 2-tuple", merged)):
        answers = result.answer_tuples()
        precision = precision_at_k(answers, truth, K)
        print(f"\n{label}: MQG has {result.mqg.num_edges} edges, "
              f"P@{K} = {precision:.2f}, "
              f"processing time = {result.processing_seconds * 1000:.1f} ms")
        for rank, answer in enumerate(answers[:5], start=1):
            marker = "*" if answer in set(map(tuple, truth)) else " "
            print(f"  {rank}. {marker} <{', '.join(answer)}>")

    print("\n(* = answer appears in the ground-truth table)")
    print(f"MQG merge time: {merged.merge_seconds * 1000:.2f} ms "
          f"(negligible vs discovery, as in Table VI of the paper)")


if __name__ == "__main__":
    main()
