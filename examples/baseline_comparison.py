"""Compare GQBE against NESS and the breadth-first Baseline on one query.

Reproduces, for a single query, the comparison behind Figs. 13–15 of the
paper: accuracy (P@k) of GQBE vs the adapted NESS matcher, and the number
of lattice nodes evaluated by GQBE's best-first exploration vs the
exhaustive breadth-first Baseline.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import GQBE, GQBEConfig
from repro.baselines.breadth_first import BreadthFirstExplorer
from repro.baselines.ness import NESSMatcher
from repro.datasets.workloads import build_freebase_workload
from repro.evaluation.metrics import ndcg_at_k, precision_at_k
from repro.lattice.query_graph import LatticeSpace

K = 10
QUERY_ID = "F16"  # programming-language designers, like <Dennis Ritchie, C>


def main() -> None:
    workload = build_freebase_workload(seed=7, scale=0.5)
    graph = workload.dataset.graph
    query = workload.query(QUERY_ID)
    truth = query.ground_truth
    print(f"Query {QUERY_ID}: <{', '.join(query.query_tuple)}> "
          f"with {len(truth)} ground-truth tuples")

    system = GQBE(graph, config=GQBEConfig(mqg_size=10, k_prime=K))

    # --- GQBE -----------------------------------------------------------
    gqbe_result = system.query(query.query_tuple, k=K)
    gqbe_answers = gqbe_result.answer_tuples()

    # --- NESS (fed the same MQG, per the paper's adaptation) -------------
    mqg = system.discover_query_graph(query.query_tuple)
    ness = NESSMatcher(graph)
    ness_answers = ness.query(
        mqg, k=K, excluded_tuples={query.query_tuple}
    ).answer_tuples()

    # --- breadth-first Baseline ------------------------------------------
    baseline = BreadthFirstExplorer(
        LatticeSpace(mqg),
        system.store,
        k=K,
        excluded_tuples={query.query_tuple},
    ).run()

    print(f"\n{'method':<10} {'P@10':>6} {'nDCG':>6} {'lattice nodes':>14}")
    print(f"{'GQBE':<10} {precision_at_k(gqbe_answers, truth, K):>6.2f} "
          f"{ndcg_at_k(gqbe_answers, truth, K):>6.2f} "
          f"{gqbe_result.statistics.nodes_evaluated:>14}")
    print(f"{'NESS':<10} {precision_at_k(ness_answers, truth, K):>6.2f} "
          f"{ndcg_at_k(ness_answers, truth, K):>6.2f} {'-':>14}")
    print(f"{'Baseline':<10} {precision_at_k(baseline.answer_tuples(), truth, K):>6.2f} "
          f"{ndcg_at_k(baseline.answer_tuples(), truth, K):>6.2f} "
          f"{baseline.statistics.nodes_evaluated:>14}")

    print("\nTop GQBE answers:")
    for answer in gqbe_result.answers[:5]:
        marker = "*" if answer.entities in set(map(tuple, truth)) else " "
        print(f"  {answer.rank}. {marker} <{', '.join(answer.entities)}> "
              f"score={answer.score:.3f}")
    print("(* = in the ground truth)")


if __name__ == "__main__":
    main()
