"""Quickstart: the paper's running example on the Fig. 1 excerpt.

Builds the small knowledge-graph excerpt of Fig. 1, asks GQBE for tuples
similar to ``<Jerry Yang, Yahoo!>`` and prints the ranked answers — the
founder/company pairs the paper uses as its motivating example.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GQBE, GQBEConfig
from repro.datasets.example_graph import figure1_excerpt


def main() -> None:
    graph = figure1_excerpt()
    print(f"Data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    system = GQBE(graph, config=GQBEConfig(mqg_size=10))
    query_tuple = ("Jerry Yang", "Yahoo!")
    result = system.query(query_tuple, k=5)

    print(f"\nQuery tuple: <{', '.join(query_tuple)}>")
    print(f"Maximal query graph: {result.mqg.num_edges} edges")
    for edge in result.mqg.edges():
        print(f"  {edge.subject} --{edge.label}--> {edge.object}"
              f"  (w={result.mqg.weight(edge):.3f})")

    print("\nTop answers:")
    for answer in result.answers:
        entities = ", ".join(answer.entities)
        print(f"  {answer.rank}. <{entities}>  score={answer.score:.3f}"
              f"  (structure={answer.structure_score:.3f},"
              f" content={answer.content_score:.3f})")

    stats = result.statistics
    print(
        f"\nLattice nodes evaluated: {stats.nodes_evaluated} "
        f"(null nodes: {stats.null_nodes}); "
        f"total time: {result.total_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
