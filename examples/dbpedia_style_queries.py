"""Run the full DBpedia-like workload (the paper's D1–D8 analogues).

Generates the DBpedia-like synthetic dataset, runs every query of the
workload through GQBE and prints a per-query accuracy table in the style of
the paper's Table III.

Run with::

    python examples/dbpedia_style_queries.py
"""

from __future__ import annotations

from repro import GQBE, GQBEConfig
from repro.datasets.workloads import build_dbpedia_workload
from repro.evaluation.metrics import average_precision, ndcg_at_k, precision_at_k

K = 10


def main() -> None:
    workload = build_dbpedia_workload(seed=11, scale=0.6)
    graph = workload.dataset.graph
    print(f"DBpedia-like graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.num_labels} labels")

    system = GQBE(graph, config=GQBEConfig(mqg_size=10, k_prime=25))

    print(f"\n{'query':<6} {'example tuple':<42} {'P@10':>6} {'nDCG':>6} {'AvgP':>6}")
    for query in workload.queries:
        result = system.query(query.query_tuple, k=K)
        answers = result.answer_tuples()
        example = "<" + ", ".join(query.query_tuple) + ">"
        print(f"{query.query_id:<6} {example:<42} "
              f"{precision_at_k(answers, query.ground_truth, K):>6.2f} "
              f"{ndcg_at_k(answers, query.ground_truth, K):>6.2f} "
              f"{average_precision(answers, query.ground_truth, K):>6.2f}")


if __name__ == "__main__":
    main()
