"""Batched multi-query execution and the HTTP serving frontend.

Demonstrates the two layers this repo adds on top of the paper's
single-query engine:

1. :meth:`GQBE.query_batch` — answer many queries in one call, sharing
   join work across them (byte-identical to sequential ``query`` calls);
2. :class:`~repro.serving.server.GQBEServer` — a threaded HTTP server
   with request micro-batching and an LRU answer cache, queried here
   over real sockets.

Run with::

    python examples/batch_and_serve.py
"""

from __future__ import annotations

import http.client
import json
import time

from repro import GQBE, GQBEConfig
from repro.datasets.workloads import build_freebase_workload
from repro.serving.server import GQBEServer


def main() -> None:
    workload = build_freebase_workload(seed=7, scale=0.5)
    graph = workload.dataset.graph
    print(f"Data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    config = GQBEConfig(mqg_size=10, k_prime=25, max_join_rows=100_000)
    system = GQBE(graph, config=config)
    tuples = [query.query_tuple for query in workload.queries]

    # --- batched vs sequential (a serving window: 3 concurrent users) --
    window = tuples * 3
    started = time.perf_counter()
    sequential = [system.query(t, k=10) for t in window]
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = system.query_batch(window, k=10)
    batch_seconds = time.perf_counter() - started

    identical = all(
        [a.entities for a in seq.answers] == [a.entities for a in bat.answers]
        for seq, bat in zip(sequential, batched)
    )
    print(
        f"\n{len(window)} queries: sequential {sequential_seconds * 1000:.1f} ms, "
        f"query_batch {batch_seconds * 1000:.1f} ms "
        f"({sequential_seconds / batch_seconds:.1f}x) — "
        f"answers identical: {identical}"
    )

    # --- the serving frontend over real HTTP ---------------------------
    server = GQBEServer(
        system, port=0, batch_window_seconds=0.002, cache_size=256
    ).start()
    print(f"\nServing on http://{server.host}:{server.port}")
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = json.dumps({"tuple": list(tuples[0]), "k": 5}).encode()
        for attempt in ("cold", "cached"):
            started = time.perf_counter()
            connection.request(
                "POST",
                "/query",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = json.loads(connection.getresponse().read())
            elapsed = (time.perf_counter() - started) * 1000
            top = response["answers"][0]
            print(
                f"  {attempt:6s} request: {elapsed:6.2f} ms  "
                f"cached={response['cached']}  "
                f"top answer: {tuple(top['entities'])} (score {top['score']:.2f})"
            )
        connection.request("GET", "/stats")
        stats = json.loads(connection.getresponse().read())
        print(
            f"  server stats: {stats['requests_served']} served, "
            f"cache hits {stats['cache']['hits']}, "
            f"batches {stats['batcher']['batches_run']}"
        )
    finally:
        connection.close()
        server.stop()


if __name__ == "__main__":
    main()
