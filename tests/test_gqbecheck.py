"""gqbecheck analyzer suite: rule firing/non-firing, pragmas, baseline.

Each rule id gets one minimal violating fixture and one compliant
counterpart — the pair pins both that the rule catches the pattern and
that the sanctioned fix silences it.  Fixtures opt into contracts with
``# gqbe: contract[...]`` pragmas so they work from a tmp directory.
The clean-tree test at the bottom is the repo's own gate: the committed
tree must carry zero non-baselined findings.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.gqbecheck import check_paths  # noqa: E402
from tools.gqbecheck.baseline import (  # noqa: E402
    load_baseline,
    merge_for_update,
    save_baseline,
    split_by_baseline,
)
from tools.gqbecheck.cli import main as check_main  # noqa: E402


def findings_for(tmp_path: Path, source: str, name: str = "sample.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return check_paths([path], tmp_path)


def rule_ids(findings) -> set[str]:
    return {finding.rule_id for finding in findings}


# --------------------------------------------------------------------------
# Rule matrix: one firing and one clean fixture per rule id.

DET001_FIRING = """\
# gqbe: contract[deterministic]
items = {1, 2, 3}
for item in items:
    print(item)
"""
DET001_CLEAN = """\
# gqbe: contract[deterministic]
items = {1, 2, 3}
for item in sorted(items):
    print(item)
"""

DET002_FIRING = """\
# gqbe: contract[deterministic]
import random

value = random.random()
"""
DET002_CLEAN = """\
# gqbe: contract[deterministic]
import time

started = time.perf_counter()
"""

DET003_FIRING = """\
# gqbe: contract[deterministic]
items = {1, 2, 3}
first = next(iter(items))
"""
DET003_CLEAN = """\
# gqbe: contract[deterministic]
items = {1, 2, 3}
first = min(items)
"""

MAP001_FIRING = """\
# gqbe: contract[snapshot-io]
import numpy as np


def patch(buffer):
    ids = np.frombuffer(buffer, dtype="int64")
    ids[0] = 7
    return ids
"""
MAP001_CLEAN = """\
# gqbe: contract[snapshot-io]
import numpy as np


def patch(buffer):
    ids = np.frombuffer(buffer, dtype="int64")
    owned = ids.copy()
    owned[0] = 7
    return owned
"""

MAP002_FIRING = """\
# gqbe: contract[snapshot-io]
import numpy as np


def ordered(buffer):
    ids = np.frombuffer(buffer, dtype="int64")
    ids.sort()
    return ids
"""
MAP002_CLEAN = """\
# gqbe: contract[snapshot-io]
import numpy as np


def ordered(buffer):
    ids = np.frombuffer(buffer, dtype="int64")
    owned = ids.copy()
    owned.sort()
    return owned
"""

CON001_FIRING = """\
# gqbe: contract[concurrent]
counter = 0


def bump():
    global counter
    counter += 1
"""
CON001_CLEAN = """\
# gqbe: contract[concurrent]
import threading

counter = 0
_counter_lock = threading.Lock()


def bump():
    global counter
    with _counter_lock:
        counter += 1
"""

CON002_FIRING = """\
# gqbe: contract[concurrent]
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        self.count += 1
"""
CON002_CLEAN = """\
# gqbe: contract[concurrent]
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1
"""

CON003_FIRING = """\
# gqbe: contract[concurrent]
import threading


class Pair:
    def __init__(self):
        self.alpha_lock = threading.Lock()
        self.beta_lock = threading.Lock()

    def forward(self):
        with self.alpha_lock:
            with self.beta_lock:
                pass

    def backward(self):
        with self.beta_lock:
            with self.alpha_lock:
                pass
"""
CON003_CLEAN = """\
# gqbe: contract[concurrent]
import threading


class Pair:
    def __init__(self):
        self.alpha_lock = threading.Lock()
        self.beta_lock = threading.Lock()

    def forward(self):
        with self.alpha_lock:
            with self.beta_lock:
                pass

    def also_forward(self):
        with self.alpha_lock:
            with self.beta_lock:
                pass
"""

CON004_FIRING = """\
# gqbe: contract[concurrent]
import threading


def work():
    pass


worker = threading.Thread(target=work)
"""
CON004_CLEAN = """\
# gqbe: contract[concurrent]
import threading


def work():
    pass


def start_worker():
    return threading.Thread(target=work)
"""

CON005_FIRING = """\
# gqbe: contract[concurrent]
class Gate:
    def __init__(self):
        self.depth = 0

    async def enter(self):
        self.depth += 1

    def leave(self):
        self.depth -= 1
"""
CON005_CLEAN = """\
# gqbe: contract[concurrent]
class Gate:
    def __init__(self):
        self.depth = 0

    async def enter(self):
        self.depth += 1

    async def leave(self):
        self.depth -= 1
"""

EXC001_FIRING = """\
def load(path):
    try:
        return open(path).read()
    except Exception:
        return None
"""
EXC001_CLEAN = """\
def load(path):
    try:
        return open(path).read()
    except FileNotFoundError:
        return None
"""

EXC002_FIRING = """\
# gqbe: contract[snapshot-io]
def read(path):
    try:
        return open(path, "rb").read()
    except OSError:
        return None
"""
EXC002_CLEAN = """\
# gqbe: contract[snapshot-io]
class SnapshotError(Exception):
    pass


def read(path):
    try:
        return open(path, "rb").read()
    except OSError as error:
        raise SnapshotError(f"cannot read {path}") from error
"""

EXC003_FIRING = """\
# gqbe: contract[concurrent]
class Handler:
    def do_POST(self):
        try:
            self.work()
        except Exception as error:
            self.send_error(500, str(error))
"""
EXC003_CLEAN = """\
# gqbe: contract[concurrent]
class Handler:
    def do_POST(self):
        try:
            self.work()
        except Exception as error:
            self.log(error)
            self.send_error(500, "internal server error")
"""

MATRIX = {
    "DET001": (DET001_FIRING, DET001_CLEAN),
    "DET002": (DET002_FIRING, DET002_CLEAN),
    "DET003": (DET003_FIRING, DET003_CLEAN),
    "MAP001": (MAP001_FIRING, MAP001_CLEAN),
    "MAP002": (MAP002_FIRING, MAP002_CLEAN),
    "CON001": (CON001_FIRING, CON001_CLEAN),
    "CON002": (CON002_FIRING, CON002_CLEAN),
    "CON003": (CON003_FIRING, CON003_CLEAN),
    "CON004": (CON004_FIRING, CON004_CLEAN),
    "CON005": (CON005_FIRING, CON005_CLEAN),
    "EXC001": (EXC001_FIRING, EXC001_CLEAN),
    "EXC002": (EXC002_FIRING, EXC002_CLEAN),
    "EXC003": (EXC003_FIRING, EXC003_CLEAN),
}


@pytest.mark.parametrize("rule_id", sorted(MATRIX))
def test_rule_fires_on_violation(tmp_path, rule_id):
    firing, _ = MATRIX[rule_id]
    assert rule_id in rule_ids(findings_for(tmp_path, firing))


@pytest.mark.parametrize("rule_id", sorted(MATRIX))
def test_rule_silent_on_compliant_code(tmp_path, rule_id):
    _, clean = MATRIX[rule_id]
    assert rule_id not in rule_ids(findings_for(tmp_path, clean))


# --------------------------------------------------------------------------
# CFG rules need a small project tree, not a single file.


def _write_config_project(tmp_path: Path, documented: bool, tested: bool):
    src = tmp_path / "src"
    src.mkdir()
    (src / "config.py").write_text(
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\nclass GQBEConfig:\n"
        "    d: int = 2\n"
        "    mystery_knob: int = 5\n",
        encoding="utf-8",
    )
    doc = "# Configuration\n\nThe `d` field sets the neighborhood radius.\n"
    if documented:
        doc += "The `mystery_knob` field turns the mystery dial.\n"
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "configuration.md").write_text(doc, encoding="utf-8")
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    body = "def test_d():\n    assert GQBEConfig(d=3).d == 3\n"
    if tested:
        body += (
            "\n\ndef test_mystery_knob():\n"
            "    assert GQBEConfig(mystery_knob=9).mystery_knob == 9\n"
        )
    (tests_dir / "test_config.py").write_text(body, encoding="utf-8")
    return src


def test_cfg_rules_fire_on_missing_coverage(tmp_path):
    src = _write_config_project(tmp_path, documented=False, tested=False)
    found = rule_ids(check_paths([src], tmp_path))
    assert {"CFG001", "CFG002"} <= found


def test_cfg_rules_silent_when_covered(tmp_path):
    src = _write_config_project(tmp_path, documented=True, tested=True)
    found = rule_ids(check_paths([src], tmp_path))
    assert "CFG001" not in found
    assert "CFG002" not in found


def test_unparseable_file_reports_parse_finding(tmp_path):
    findings = findings_for(tmp_path, "def broken(:\n", name="broken.py")
    assert rule_ids(findings) == {"PARSE001"}


# --------------------------------------------------------------------------
# Suppressions


def test_same_line_suppression_is_honored(tmp_path):
    source = DET003_FIRING.replace(
        "first = next(iter(items))",
        "first = next(iter(items))  # gqbe: ignore[DET003] -- test",
    )
    assert "DET003" not in rule_ids(findings_for(tmp_path, source))


def test_standalone_suppression_applies_to_next_code_line(tmp_path):
    source = DET003_FIRING.replace(
        "first = next(iter(items))",
        "# gqbe: ignore[DET003] -- justified in the test\n"
        "first = next(iter(items))",
    )
    assert "DET003" not in rule_ids(findings_for(tmp_path, source))


def test_wildcard_suppression_silences_every_rule(tmp_path):
    source = DET001_FIRING.replace(
        "for item in items:",
        "for item in items:  # gqbe: ignore[*] -- fixture",
    )
    assert "DET001" not in rule_ids(findings_for(tmp_path, source))


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    source = DET003_FIRING.replace(
        "first = next(iter(items))",
        "first = next(iter(items))  # gqbe: ignore[DET001] -- wrong id",
    )
    assert "DET003" in rule_ids(findings_for(tmp_path, source))


# --------------------------------------------------------------------------
# Baseline


def test_baseline_round_trip_excuses_exactly_its_findings(tmp_path):
    findings = findings_for(tmp_path, DET002_FIRING)
    assert findings
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, merge_for_update(findings, []))
    entries = load_baseline(baseline_path)
    new, baselined = split_by_baseline(findings, entries)
    assert new == []
    assert len(baselined) == len(findings)


def test_baseline_is_a_multiset_not_a_set(tmp_path):
    source = (
        "# gqbe: contract[deterministic]\n"
        "import random\n\n"
        "a = random.random()\n"
    )
    one = findings_for(tmp_path, source)
    entries = merge_for_update(one, [])
    # A second identical violation produces an identical fingerprint;
    # one baseline entry must excuse only one of the two.
    two = findings_for(tmp_path, source + "b = random.random()\n")
    assert len(two) == 2
    new, baselined = split_by_baseline(two, entries)
    assert len(new) == 1
    assert len(baselined) == 1


def test_update_baseline_preserves_justifications(tmp_path):
    findings = findings_for(tmp_path, DET002_FIRING)
    entries = merge_for_update(findings, [])
    for entry in entries:
        entry["justification"] = "kept on purpose"
    merged = merge_for_update(findings, entries)
    assert all(entry["justification"] == "kept on purpose" for entry in merged)


def test_baseline_fingerprint_survives_line_moves(tmp_path):
    before = findings_for(tmp_path, DET002_FIRING, name="before.py")
    shifted = DET002_FIRING.replace(
        "import random\n", "import random\n\nPADDING = 1\n"
    )
    after = findings_for(tmp_path, shifted, name="before.py")
    assert [f.fingerprint for f in before] == [f.fingerprint for f in after]
    assert before[0].line != after[0].line


# --------------------------------------------------------------------------
# CLI behavior


def test_cli_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DET002_FIRING, encoding="utf-8")
    rc = check_main(
        ["--root", str(tmp_path), "--no-baseline", str(tmp_path / "bad.py")]
    )
    assert rc == 1
    assert "DET002" in capsys.readouterr().out


def test_cli_github_format_emits_annotations(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DET002_FIRING, encoding="utf-8")
    rc = check_main(
        [
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--format",
            "github",
            str(tmp_path / "bad.py"),
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "::error file=bad.py,line=4,title=DET002::" in out


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DET002_FIRING, encoding="utf-8")
    assert (
        check_main(
            ["--root", str(tmp_path), "--update-baseline", str(tmp_path / "bad.py")]
        )
        == 0
    )
    rc = check_main(["--root", str(tmp_path), str(tmp_path / "bad.py")])
    capsys.readouterr()
    assert rc == 0


def test_cli_json_report_artifact(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DET002_FIRING, encoding="utf-8")
    report_path = tmp_path / "out" / "report.json"
    check_main(
        [
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--json-report",
            str(report_path),
            str(tmp_path / "bad.py"),
        ]
    )
    capsys.readouterr()
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["version"] == 1
    assert report["new"] and report["new"][0]["rule"] == "DET002"


def test_cli_rejects_unknown_rule_selection(tmp_path, capsys):
    rc = check_main(["--root", str(tmp_path), "--select", "NOPE999"])
    capsys.readouterr()
    assert rc == 2


# --------------------------------------------------------------------------
# The repo's own gate: the committed tree is clean.


def test_repo_tree_has_zero_non_baselined_findings(capsys):
    scan = [
        str(REPO_ROOT / piece)
        for piece in ("src", "benchmarks", "tools", "tests")
        if (REPO_ROOT / piece).is_dir()
    ]
    rc = check_main(["--root", str(REPO_ROOT), *scan])
    out = capsys.readouterr().out
    assert rc == 0, f"new findings in the committed tree:\n{out}"


def test_repo_baseline_has_no_placeholder_justifications():
    baseline_path = REPO_ROOT / "tools" / "gqbecheck" / "baseline.json"
    entries = load_baseline(baseline_path)
    placeholders = [
        entry
        for entry in entries
        if entry.get("justification", "").startswith("TODO")
    ]
    assert placeholders == [], "baseline entries must carry real justifications"
