"""End-to-end integration tests for the GQBE facade."""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.exceptions import EvaluationError, QueryError, UnknownEntityError


class TestFigure1RunningExample:
    def test_top_answers_match_the_paper(self, figure1_system, figure1_truth):
        result = figure1_system.query(("Jerry Yang", "Yahoo!"), k=5)
        answers = result.answer_tuples()
        for expected in figure1_truth:
            assert expected in answers

    def test_query_tuple_not_returned(self, figure1_system):
        result = figure1_system.query(("Jerry Yang", "Yahoo!"), k=10)
        assert ("Jerry Yang", "Yahoo!") not in result.answer_tuples()

    def test_ranks_are_sequential(self, figure1_system):
        result = figure1_system.query(("Jerry Yang", "Yahoo!"), k=5)
        assert [answer.rank for answer in result.answers] == list(
            range(1, len(result.answers) + 1)
        )

    def test_result_metadata(self, figure1_system):
        result = figure1_system.query(("Jerry Yang", "Yahoo!"), k=5)
        assert result.query_tuples == (("Jerry Yang", "Yahoo!"),)
        assert result.mqg.num_edges > 0
        assert result.discovery_seconds >= 0
        assert result.processing_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.discovery_seconds + result.processing_seconds
        )
        assert result.statistics.nodes_evaluated > 0
        assert result.top(2) == result.answers[:2]

    def test_answers_have_same_arity_as_query(self, figure1_system):
        result = figure1_system.query(("Jerry Yang", "Yahoo!"), k=10)
        assert all(len(answer) == 2 for answer in result.answers)

    def test_single_entity_query(self, figure1_system):
        result = figure1_system.query(("Stanford",), k=5)
        assert all(len(answer) == 1 for answer in result.answers)
        assert ("Stanford",) not in result.answer_tuples()

    def test_three_entity_query(self, figure1_system):
        result = figure1_system.query(("Jerry Yang", "Yahoo!", "Sunnyvale"), k=5)
        assert all(len(answer) == 3 for answer in result.answers)
        answers = result.answer_tuples()
        assert ("Steve Wozniak", "Apple Inc.", "Cupertino") in answers


class TestMultiTupleQueries:
    def test_merged_query_finds_remaining_founders(self, figure1_system):
        result = figure1_system.query_multi(
            [("Jerry Yang", "Yahoo!"), ("Steve Wozniak", "Apple Inc.")], k=5
        )
        answers = result.answer_tuples()
        assert ("Sergey Brin", "Google") in answers
        assert ("Bill Gates", "Microsoft") in answers

    def test_input_tuples_excluded_from_answers(self, figure1_system):
        result = figure1_system.query_multi(
            [("Jerry Yang", "Yahoo!"), ("Steve Wozniak", "Apple Inc.")], k=10
        )
        answers = result.answer_tuples()
        assert ("Jerry Yang", "Yahoo!") not in answers
        assert ("Steve Wozniak", "Apple Inc.") not in answers

    def test_multi_tuple_metadata(self, figure1_system):
        result = figure1_system.query_multi(
            [("Jerry Yang", "Yahoo!"), ("Steve Wozniak", "Apple Inc.")], k=5
        )
        assert len(result.per_tuple_discovery_seconds) == 2
        assert result.merge_seconds >= 0
        assert result.mqg.query_tuple == ("__w1", "__w2")

    def test_single_tuple_multi_query_falls_back(self, figure1_system):
        single = figure1_system.query(("Jerry Yang", "Yahoo!"), k=5)
        multi = figure1_system.query_multi([("Jerry Yang", "Yahoo!")], k=5)
        assert multi.answer_tuples() == single.answer_tuples()

    def test_mismatched_arity_rejected(self, figure1_system):
        with pytest.raises(QueryError):
            figure1_system.query_multi([("Jerry Yang", "Yahoo!"), ("Stanford",)], k=5)

    def test_empty_multi_query_rejected(self, figure1_system):
        with pytest.raises(QueryError):
            figure1_system.query_multi([], k=5)


class TestValidationAndConfig:
    def test_unknown_entity_raises(self, figure1_system):
        with pytest.raises(UnknownEntityError):
            figure1_system.query(("Jerry Yang", "No Such Company"), k=5)

    def test_empty_tuple_raises(self, figure1_system):
        with pytest.raises(QueryError):
            figure1_system.query((), k=5)

    def test_invalid_config_rejected(self):
        with pytest.raises(EvaluationError):
            GQBEConfig(d=0)
        with pytest.raises(EvaluationError):
            GQBEConfig(mqg_size=0)
        with pytest.raises(EvaluationError):
            GQBEConfig(k_prime=0)
        with pytest.raises(EvaluationError):
            GQBEConfig(max_join_rows=0)
        with pytest.raises(EvaluationError):
            GQBEConfig(node_budget=0)

    def test_default_config_used_when_omitted(self, figure1_graph):
        system = GQBE(figure1_graph)
        assert system.config.d == 2
        assert system.config.mqg_size == 15

    def test_reduction_can_be_disabled(self, figure1_graph):
        system = GQBE(figure1_graph, config=GQBEConfig(reduce_neighborhood=False))
        result = system.query(("Jerry Yang", "Yahoo!"), k=5)
        assert result.answers


class TestSyntheticIntegration:
    def test_founders_query_on_synthetic_graph(self, tiny_system, tiny_dataset):
        table = tiny_dataset.table("tech_founders")
        query_tuple = table[0]
        truth = set(map(tuple, table[1:]))
        result = tiny_system.query(query_tuple, k=10)
        answers = result.answer_tuples()
        assert answers, "expected at least one answer on the synthetic graph"
        hits = sum(1 for answer in answers if answer in truth)
        assert hits >= len(answers) // 2

    def test_multi_tuple_on_synthetic_graph(self, tiny_system, tiny_dataset):
        table = tiny_dataset.table("tech_founders")
        result = tiny_system.query_multi([table[0], table[1]], k=10)
        truth = set(map(tuple, table[2:]))
        answers = result.answer_tuples()
        assert answers
        assert any(answer in truth for answer in answers)
