"""Tests for the CI benchmark-regression gate (``benchmarks/check_regression.py``).

The gate compares pytest-benchmark medians against the committed
``benchmarks/baseline.json`` and fails CI on >tolerance regressions; these
tests pin its comparison logic, exit codes and baseline-refresh mode, and
sanity-check the committed baseline file itself.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def _results_json(medians: dict[str, float]) -> dict:
    return {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }


def _run_gate(tmp_path, results: dict[str, float], baseline: dict[str, float], *args):
    results_path = tmp_path / "results.json"
    results_path.write_text(json.dumps(_results_json(results)))
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({"meta": {}, "medians": baseline}))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(results_path), str(baseline_path), *args],
        capture_output=True,
        text=True,
    )


class TestGate:
    def test_passes_within_tolerance(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_a": 0.0014, "bench_b": 0.002}, {"bench_a": 0.001, "bench_b": 0.002}
        )
        assert run.returncode == 0, run.stderr
        assert "all 2 benchmarks within tolerance" in run.stdout

    def test_fails_on_regression_beyond_tolerance(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_a": 0.0016, "bench_b": 0.002}, {"bench_a": 0.001, "bench_b": 0.002}
        )
        assert run.returncode == 1
        assert "REGRESSION" in run.stdout
        assert "bench_a" in run.stderr

    def test_tolerance_flag_is_honored(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_a": 0.0019}, {"bench_a": 0.001}, "--tolerance", "2.0"
        )
        assert run.returncode == 0, run.stderr

    def test_new_and_missing_benchmarks_do_not_fail(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_new": 0.001}, {"bench_gone": 0.001}
        )
        assert run.returncode == 0, run.stderr
        assert "NEW" in run.stdout
        assert "MISSING" in run.stdout

    def test_update_rewrites_baseline(self, tmp_path):
        results_path = tmp_path / "results.json"
        results_path.write_text(json.dumps(_results_json({"bench_a": 0.005})))
        baseline_path = tmp_path / "baseline.json"
        run = subprocess.run(
            [
                sys.executable,
                str(SCRIPT),
                str(results_path),
                str(baseline_path),
                "--update",
            ],
            capture_output=True,
            text=True,
        )
        assert run.returncode == 0, run.stderr
        written = json.loads(baseline_path.read_text())
        assert written["medians"] == {"bench_a": 0.005}


class TestCommittedBaseline:
    def test_baseline_exists_and_covers_core_benchmarks(self):
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        medians = baseline["medians"]
        assert all(isinstance(v, float) and v > 0 for v in medians.values())
        for required in (
            "test_bench_end_to_end_query",
            "test_bench_offline_precomputation",
            "test_bench_snapshot_warm_start",
            "test_bench_cold_start_from_triples",
        ):
            assert required in medians
