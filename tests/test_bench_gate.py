"""Tests for the CI benchmark-regression gate (``benchmarks/check_regression.py``).

The gate compares pytest-benchmark medians against the committed
``benchmarks/baseline.json`` and fails CI on >tolerance regressions; these
tests pin its comparison logic, exit codes and baseline-refresh mode, and
sanity-check the committed baseline file itself.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"


def _results_json(medians: dict[str, float], mins: dict[str, float] | None = None) -> dict:
    mins = mins or {}
    benchmarks = []
    for name, median in medians.items():
        stats = {"median": median}
        if name in mins:
            stats["min"] = mins[name]
        benchmarks.append({"name": name, "stats": stats})
    return {"benchmarks": benchmarks}


def _run_gate(
    tmp_path,
    results: dict[str, float],
    baseline: dict[str, float],
    *args,
    mins: dict[str, float] | None = None,
):
    results_path = tmp_path / "results.json"
    results_path.write_text(json.dumps(_results_json(results, mins)))
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({"meta": {}, "medians": baseline}))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(results_path), str(baseline_path), *args],
        capture_output=True,
        text=True,
    )


class TestGate:
    def test_passes_within_tolerance(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_a": 0.0014, "bench_b": 0.002}, {"bench_a": 0.001, "bench_b": 0.002}
        )
        assert run.returncode == 0, run.stderr
        assert "all 2 benchmarks within tolerance" in run.stdout

    def test_fails_on_regression_beyond_tolerance(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_a": 0.0016, "bench_b": 0.002}, {"bench_a": 0.001, "bench_b": 0.002}
        )
        assert run.returncode == 1
        assert "REGRESSION" in run.stdout
        assert "bench_a" in run.stderr

    def test_tolerance_flag_is_honored(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_a": 0.0019}, {"bench_a": 0.001}, "--tolerance", "2.0"
        )
        assert run.returncode == 0, run.stderr

    def test_new_and_missing_benchmarks_do_not_fail(self, tmp_path):
        run = _run_gate(
            tmp_path, {"bench_new": 0.001}, {"bench_gone": 0.001}
        )
        assert run.returncode == 0, run.stderr
        assert "NEW" in run.stdout
        assert "MISSING" in run.stdout

    def test_update_rewrites_baseline(self, tmp_path):
        results_path = tmp_path / "results.json"
        results_path.write_text(json.dumps(_results_json({"bench_a": 0.005})))
        baseline_path = tmp_path / "baseline.json"
        run = subprocess.run(
            [
                sys.executable,
                str(SCRIPT),
                str(results_path),
                str(baseline_path),
                "--update",
            ],
            capture_output=True,
            text=True,
        )
        assert run.returncode == 0, run.stderr
        written = json.loads(baseline_path.read_text())
        assert written["medians"] == {"bench_a": 0.005}


class TestSpeedupPairs:
    """The ``--speedup-pair`` gate used by the native-kernel benchmarks."""

    BASE = {"slow": 0.010, "fast": 0.004}

    def test_pair_meeting_ratio_passes(self, tmp_path):
        run = _run_gate(
            tmp_path, dict(self.BASE), dict(self.BASE),
            "--speedup-pair", "slow:fast:2.0",
        )
        assert run.returncode == 0, run.stderr
        assert "ok         slow / fast  speedup  2.50x" in run.stdout

    def test_pair_below_ratio_fails(self, tmp_path):
        run = _run_gate(
            tmp_path, dict(self.BASE), dict(self.BASE),
            "--speedup-pair", "slow:fast:3.0",
        )
        assert run.returncode == 1
        assert "TOO SLOW" in run.stdout
        assert "slow / fast" in run.stderr

    def test_pair_compares_minima_when_present(self, tmp_path):
        # Medians alone would fail the 3x gate (2.5x); the noise-robust
        # minima (0.009 / 0.002 = 4.5x) pass it.
        run = _run_gate(
            tmp_path, dict(self.BASE), dict(self.BASE),
            "--speedup-pair", "slow:fast:3.0",
            mins={"slow": 0.009, "fast": 0.002},
        )
        assert run.returncode == 0, run.stderr
        assert "speedup  4.50x" in run.stdout

    def test_pair_with_missing_leg_is_skipped(self, tmp_path):
        # The native leg is absent (e.g. extension not built): the pair
        # is reported as skipped, and the same invocation still passes.
        run = _run_gate(
            tmp_path, {"slow": 0.010}, {"slow": 0.010},
            "--speedup-pair", "slow:fast:2.0",
        )
        assert run.returncode == 0, run.stderr
        assert "SKIPPED" in run.stdout

    def test_malformed_pair_spec_is_rejected(self, tmp_path):
        run = _run_gate(
            tmp_path, dict(self.BASE), dict(self.BASE),
            "--speedup-pair", "slow:fast",
        )
        assert run.returncode == 2
        assert "expected SLOW:FAST:RATIO" in run.stderr


class TestCommittedBaseline:
    def test_baseline_exists_and_covers_core_benchmarks(self):
        baseline = json.loads((REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        medians = baseline["medians"]
        assert all(isinstance(v, float) and v > 0 for v in medians.values())
        for required in (
            "test_bench_end_to_end_query",
            "test_bench_offline_precomputation",
            "test_bench_snapshot_warm_start",
            "test_bench_cold_start_from_triples",
            "test_fig14_kernel_hot_paths_python",
            "test_fig14_kernel_hot_paths_native",
        ):
            assert required in medians
