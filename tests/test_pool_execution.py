"""Process-pool execution must be byte-identical to inline execution.

The acceptance contract of the pooled backend (``serving/pool.py``):
ranked answers — entities, scores, ranks — and their order are identical
across **v1-loaded**, **v2-mapped**, **v3-mapped**, **inline** and
**pooled** execution (pooled over both mapped formats), for batch sizes
1, 2 and the full 20-query Fig. 14-style workload (mirroring
``tests/test_batch_equivalence.py``).  Also covers duplicate fan-out
through the pool, the serve layer's pooled dispatch, error handling
(including a worker dying inside the fork-pool initializer, which must
fail fast with a clean ``GQBEError`` instead of hanging on the startup
barrier), and the config surface.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.workloads import build_freebase_workload
from repro.exceptions import EvaluationError, GQBEError
from repro.serving.pool import WorkerPool, _chunk
from repro.storage.snapshot import GraphStore

#: Small pool for CI friendliness; the bench uses >= 4.
POOL_WORKERS = 2

_CONFIG = dict(mqg_size=8, k_prime=20, node_budget=500, max_join_rows=50_000)


@pytest.fixture(scope="module")
def workload():
    return build_freebase_workload(seed=7, scale=0.25)


@pytest.fixture(scope="module")
def tuples(workload):
    return [query.query_tuple for query in workload.queries]


@pytest.fixture(scope="module")
def snapshot_v1(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "workload.snap"
    GraphStore.build(workload.dataset.graph).save(path)
    return path


@pytest.fixture(scope="module")
def snapshot_v2(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "workload.snapdir"
    GraphStore.build(workload.dataset.graph).save(path, format="v2")
    return path


@pytest.fixture(scope="module")
def snapshot_v3(workload, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "workload.snapdir3"
    GraphStore.build(workload.dataset.graph).save(path, format="v3")
    return path


@pytest.fixture(scope="module")
def systems(workload, snapshot_v1, snapshot_v2, snapshot_v3):
    """The execution variants of the acceptance criterion."""
    inline_config = GQBEConfig(**_CONFIG)
    pooled_config = GQBEConfig(
        **_CONFIG, execution="pool", pool_workers=POOL_WORKERS
    )
    built = {
        "inline": GQBE(workload.dataset.graph, config=inline_config),
        "v1-loaded": GQBE.from_snapshot(snapshot_v1, config=inline_config),
        "v2-mapped": GQBE.from_snapshot(snapshot_v2, config=inline_config),
        "v3-mapped": GQBE.from_snapshot(snapshot_v3, config=inline_config),
        "pooled": GQBE.from_snapshot(snapshot_v2, config=pooled_config),
        "pooled-v3": GQBE.from_snapshot(snapshot_v3, config=pooled_config),
    }
    yield built
    built["pooled"].close()
    built["pooled-v3"].close()


def answer_key(result):
    return [
        (a.rank, a.entities, a.score, a.structure_score, a.content_score)
        for a in result.answers
    ]


@pytest.mark.parametrize("batch_size", [1, 2, 20])
def test_format_and_execution_equivalence(systems, tuples, batch_size):
    """v1 / v2 / v3 × inline / pooled all rank byte-identically."""
    batch = tuples[:batch_size]
    assert len(batch) == batch_size
    reference = [answer_key(r) for r in systems["inline"].query_batch(batch, k=5)]
    for name in ("v1-loaded", "v2-mapped", "v3-mapped", "pooled", "pooled-v3"):
        results = systems[name].query_batch(batch, k=5)
        assert [answer_key(r) for r in results] == reference, name


def test_pooled_duplicates_collapse_and_fan_out(systems, tuples):
    pooled = systems["pooled"]
    batch = [tuples[0], tuples[1], tuples[0], tuples[2], tuples[0]]
    results = pooled.query_batch(batch, k=5)
    assert len(results) == len(batch)
    reference = {
        t: answer_key(systems["inline"].query(t, k=5)) for t in set(batch)
    }
    for query_tuple, result in zip(batch, results):
        assert result.query_tuples == (query_tuple,)
        assert answer_key(result) == reference[query_tuple]
    # Fan-out duplicates share no mutable state.
    assert results[0].answers is not results[2].answers
    assert results[0].statistics is not results[2].statistics


def test_fork_inherited_pool_matches(systems, workload, tuples):
    """A pool without a snapshot (fork-inherited system) is identical too."""
    system = GQBE(
        workload.dataset.graph,
        config=GQBEConfig(**_CONFIG, execution="pool", pool_workers=POOL_WORKERS),
    )
    try:
        results = system.query_batch(tuples[:4], k=5)
        reference = systems["inline"].query_batch(tuples[:4], k=5)
        assert [answer_key(r) for r in results] == [
            answer_key(r) for r in reference
        ]
    finally:
        system.close()


def test_single_query_stays_inline(snapshot_v2, tuples):
    """One-element batches take the inline path — no pool is created
    just for them."""
    fresh = GQBE.from_snapshot(
        snapshot_v2,
        config=GQBEConfig(**_CONFIG, execution="pool", pool_workers=POOL_WORKERS),
    )
    try:
        fresh.query_batch([tuples[0]], k=2)
        fresh.query(tuples[0], k=2)
        assert fresh._pool is None
    finally:
        fresh.close()


def test_pool_propagates_engine_errors(systems, snapshot_v2):
    pooled = GQBE.from_snapshot(
        snapshot_v2,
        config=GQBEConfig(**_CONFIG, execution="pool", pool_workers=POOL_WORKERS),
    )
    try:
        with pytest.raises(GQBEError):
            pooled.query_batch(
                [("F0", "C0"), ("no-such-entity", "nowhere")], k=3
            )
    finally:
        pooled.close()


def test_worker_pool_requires_source():
    with pytest.raises(GQBEError, match="snapshot_path or a system"):
        WorkerPool(workers=2)


def _exit_first_worker(flag) -> None:
    """Init hook killing exactly one worker mid-initialization."""
    with flag.get_lock():
        first = flag.value == 0
        if first:
            flag.value = 1
    if first:
        os._exit(1)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_dying_worker_in_initializer_fails_fast(workload):
    """Satellite: a worker dying inside ``_init_worker`` must not leave
    its siblings blocked on the startup barrier for the 120s timeout —
    the constructor detects the death, tears the pool down and raises a
    clean GQBEError within seconds."""
    context = multiprocessing.get_context("fork")
    flag = context.Value("i", 0)
    system = GQBE(workload.dataset.graph, config=GQBEConfig(**_CONFIG))
    started = time.monotonic()
    with pytest.raises(GQBEError, match="pool failed during initialization"):
        WorkerPool(
            workers=2,
            system=system,
            _init_hook=functools.partial(_exit_first_worker, flag),
        )
    # Far below the barrier timeout: the failure was detected, not waited out.
    assert time.monotonic() - started < 30


def test_chunk_balancing():
    assert _chunk(list(range(5)), 2) == [[0, 1, 2], [3, 4]]
    assert _chunk(list(range(2)), 8) == [[0], [1]]
    assert _chunk(list(range(4)), 4) == [[0], [1], [2], [3]]


def test_config_validation():
    with pytest.raises(EvaluationError, match="execution"):
        GQBEConfig(execution="threads")
    with pytest.raises(EvaluationError, match="pool_workers"):
        GQBEConfig(pool_workers=0)
    assert GQBEConfig(execution="pool", pool_workers=4).pool_workers == 4


def test_pool_rss_reporting(systems, tuples):
    """Worker PIDs and RSS are observable (Linux procfs)."""
    pooled = systems["pooled"]
    pooled.query_batch(tuples[:4], k=5)  # ensure workers are spawned
    pool = pooled.worker_pool()
    pids = pool.worker_pids()
    assert len(pids) == POOL_WORKERS
    stats = pool.stats()
    assert stats["workers"] == POOL_WORKERS and stats["snapshot_backed"]
    rss = pool.worker_rss_bytes()
    assert all(size > 0 for size in rss)


class TestServingPoolDispatch:
    def test_server_with_workers_answers_identically(
        self, systems, snapshot_v2, tuples
    ):
        from repro.serving.server import GQBEServer

        config = GQBEConfig(**_CONFIG)
        server = GQBEServer(
            GQBE.from_snapshot(snapshot_v2, config=config),
            snapshot_path=snapshot_v2,
            port=0,
            batch_window_seconds=0.001,
            cache_size=0,
            workers=POOL_WORKERS,
        ).start()
        try:
            reference = systems["inline"].query(tuples[0], k=5)
            status, body = server.handle_query(
                {"tuple": list(tuples[0]), "k": 5}
            )
            assert status == 200
            assert [tuple(a["entities"]) for a in body["answers"]] == [
                a.entities for a in reference.answers
            ]
            assert [a["score"] for a in body["answers"]] == [
                a.score for a in reference.answers
            ]
            stats = server.stats()
            assert stats["pool"]["workers"] == POOL_WORKERS
            memory = server.memory_stats()
            assert memory["workers"] == POOL_WORKERS
        finally:
            server.stop()

    def test_batcher_pool_failure_falls_back(self, systems, tuples):
        """A broken pool degrades to the inline runner, not to errors."""
        from repro.serving.batching import QueryBatcher

        inline = systems["inline"]

        class _ExplodingPool:
            def query_batch(self, *args, **kwargs):
                raise RuntimeError("pool is broken")

        def runner(batch, k, k_prime):
            return inline.query_batch(list(batch), k=k, k_prime=k_prime)

        batcher = QueryBatcher(
            runner, window_seconds=0.05, max_batch=8, pool=_ExplodingPool()
        )
        try:
            import threading

            results = {}
            threads = [
                threading.Thread(
                    target=lambda t=t: results.__setitem__(
                        t, batcher.submit(t, k=5, timeout=30)
                    )
                )
                for t in tuples[:2]
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(results) == 2
            for t, result in results.items():
                assert answer_key(result) == answer_key(inline.query(t, k=5))
        finally:
            batcher.close()
