"""Unit tests for the vertical-partition store and the hash-join evaluator."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, LatticeError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.storage.join import Relation, evaluate_query_edges, extend_with_edge
from repro.storage.plan import plan_join_order
from repro.storage.store import VerticalPartitionStore
from repro.storage.table import EdgeTable
from repro.storage.vocabulary import IdentityVocabulary, Vocabulary


@pytest.fixture(scope="module")
def figure1_string_store(figure1_graph) -> VerticalPartitionStore:
    """The Fig. 1 store on the identity-vocabulary (string) reference path."""
    return VerticalPartitionStore(figure1_graph, vocabulary=IdentityVocabulary())


class TestVocabulary:
    def test_intern_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.intern("a") == 0
        assert vocab.intern("b") == 1
        assert vocab.intern("a") == 0
        assert len(vocab) == 2

    def test_lookup_and_decode(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.id_of("x") == 0
        assert vocab.id_of("missing") is None
        assert vocab.term_of(1) == "y"
        assert vocab.decode_row((1, 0)) == ("y", "x")
        assert "x" in vocab
        assert list(vocab) == ["x", "y"]

    def test_identity_vocabulary_is_a_no_op(self):
        vocab = IdentityVocabulary()
        assert vocab.intern("a") == "a"
        assert vocab.id_of("anything") == "anything"
        assert vocab.term_of("a") == "a"
        assert vocab.decode_row(("a", "b")) == ("a", "b")


class TestEdgeTable:
    def test_add_and_probe(self):
        table = EdgeTable("r", [(0, 1), (0, 2), (3, 1)])
        assert len(table) == 3
        assert table.probe_subject(0) == [(0, 1), (0, 2)]
        assert table.probe_object(1) == [(0, 1), (3, 1)]
        assert table.has_row(0, 1)
        assert not table.has_row(1, 0)

    def test_duplicates_ignored(self):
        table = EdgeTable("r", [(0, 1), (0, 1)])
        assert len(table) == 1

    def test_subjects_objects_sets(self):
        table = EdgeTable("r", [(0, 1), (2, 1)])
        assert table.subjects() == {0, 2}
        assert table.objects() == {1}

    def test_contains_and_iter(self):
        table = EdgeTable("r", [(0, 1)])
        assert (0, 1) in table
        assert list(table) == [(0, 1)]


class TestColumnarEdgeTable:
    def test_mutation_invalidates_scalar_buckets(self):
        """Regression: buckets built before numpy columns existed went
        stale because add_row only checked the numpy cache."""
        from repro.storage.table import ColumnarEdgeTable

        table = ColumnarEdgeTable("r", [(1, 2)])
        assert table.subject_buckets() == {1: [2]}
        assert table.object_buckets() == {2: [1]}
        table.add_row(1, 3)
        assert table.subject_buckets() == {1: [2, 3]}
        assert table.object_buckets() == {2: [1], 3: [1]}

    def test_mutation_invalidates_vector_indexes(self):
        from repro.storage.table import ColumnarEdgeTable
        import numpy as np

        table = ColumnarEdgeTable("r", [(1, 2), (1, 4), (5, 2)])
        table.build_indexes()
        assert table.contains_pairs(np.array([1]), np.array([4])).all()
        table.add_row(7, 8)
        assert list(table.subject_ids()) == [1, 1, 5, 7]
        assert table.contains_pairs(np.array([7]), np.array([8])).all()
        probe_idx, objects = table.probe_expand_subject(np.array([7, 1]))
        assert probe_idx.tolist() == [0, 1, 1]
        assert objects.tolist() == [8, 2, 4]

    def test_duplicates_ignored_and_iteration(self):
        from repro.storage.table import ColumnarEdgeTable

        table = ColumnarEdgeTable("r", [(0, 1), (0, 1), (2, 3)])
        assert len(table) == 2
        assert list(table) == [(0, 1), (2, 3)]
        assert table.has_row(0, 1) and not table.has_row(1, 0)
        assert table.subjects() == {0, 2}
        assert table.objects() == {1, 3}


class TestStore:
    def test_one_table_per_label(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        assert store.num_tables == figure1_graph.num_labels
        assert store.num_rows == figure1_graph.num_edges

    def test_vocabulary_covers_all_nodes(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        assert len(store.vocabulary) == figure1_graph.num_nodes
        for node in figure1_graph.nodes:
            entity_id = store.vocabulary.id_of(node)
            assert entity_id is not None
            assert store.vocabulary.term_of(entity_id) == node

    def test_tables_store_interned_rows(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        vocab = store.vocabulary
        founded = store.table("founded")
        assert founded.has_row(vocab.id_of("Jerry Yang"), vocab.id_of("Yahoo!"))
        assert all(
            isinstance(subj, int) and isinstance(obj, int) for subj, obj in founded
        )

    def test_table_lookup(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        founded = store.table("founded")
        assert store.cardinality("founded") == len(founded)

    def test_string_path_with_identity_vocabulary(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph, vocabulary=IdentityVocabulary())
        assert store.table("founded").has_row("Jerry Yang", "Yahoo!")

    def test_unknown_label(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        with pytest.raises(GraphError):
            store.table("does_not_exist")
        assert len(store.table_or_empty("does_not_exist")) == 0
        assert store.cardinality("does_not_exist") == 0
        assert not store.has_label("does_not_exist")

    def test_table_or_empty_returns_stored_empty_table(self):
        """Regression: an *empty* stored table is falsy, and the old
        ``get(label) or EdgeTable(label)`` replaced it with a throwaway."""
        graph = KnowledgeGraph([("a", "r", "b")])
        store = VerticalPartitionStore(graph, columnar=False)
        table = store.table("r")
        # Force the stored table empty (simulates a label whose rows were
        # all removed, e.g. by a future delete path).
        table._rows.clear()
        table._row_set.clear()
        table._by_subject.clear()
        table._by_object.clear()
        assert store.table_or_empty("r") is table
        # Unknown labels still yield a fresh empty table, not an error.
        assert store.table_or_empty("missing") is not table
        assert len(store.table_or_empty("missing")) == 0

    def test_columnar_flag_and_fallbacks(self, figure1_graph):
        assert VerticalPartitionStore(figure1_graph).is_columnar
        assert not VerticalPartitionStore(figure1_graph, columnar=False).is_columnar
        # The string reference path never goes columnar.
        assert not VerticalPartitionStore(
            figure1_graph, vocabulary=IdentityVocabulary()
        ).is_columnar


class TestJoinPlanning:
    def test_plan_keeps_connectivity(self, figure1_store):
        edges = [
            Edge("Jerry Yang", "founded", "Yahoo!"),
            Edge("Yahoo!", "headquartered_in", "Sunnyvale"),
            Edge("Sunnyvale", "in_state", "California"),
        ]
        plan = plan_join_order(edges, figure1_store)
        seen_nodes = {plan.order[0].subject, plan.order[0].object}
        for edge in plan.order[1:]:
            assert edge.subject in seen_nodes or edge.object in seen_nodes
            seen_nodes.update((edge.subject, edge.object))

    def test_plan_starts_with_most_selective_edge(self, figure1_store):
        edges = [
            Edge("Jerry Yang", "education", "Stanford"),
            Edge("Jerry Yang", "founded", "Yahoo!"),
        ]
        plan = plan_join_order(edges, figure1_store)
        # 'founded' has fewer rows than 'education' in the excerpt.
        assert plan.order[0].label == "founded"

    def test_disconnected_edges_rejected(self, figure1_store):
        edges = [
            Edge("Jerry Yang", "founded", "Yahoo!"),
            Edge("Cupertino", "in_state", "California"),
        ]
        with pytest.raises(LatticeError):
            plan_join_order(edges, figure1_store)

    def test_empty_plan_rejected(self, figure1_store):
        with pytest.raises(LatticeError):
            plan_join_order([], figure1_store)


class TestJoinEvaluation:
    """Join semantics, exercised on the readable string (identity) path.

    The interned path runs the very same join code on int rows; the
    equivalence of the two engines is asserted end-to-end in
    ``test_interning_equivalence.py``.
    """

    def test_single_edge_query(self, figure1_string_store):
        relation = evaluate_query_edges(
            figure1_string_store, [Edge("q_person", "founded", "q_company")]
        )
        assert relation.num_rows == 5
        assert set(relation.variables) == {"q_person", "q_company"}

    def test_single_edge_query_interned_rows_decode(self, figure1_store):
        relation = evaluate_query_edges(
            figure1_store, [Edge("q_person", "founded", "q_company")]
        )
        decoded = {store_row for store_row in map(figure1_store.vocabulary.decode_row, relation.rows)}
        assert ("Jerry Yang", "Yahoo!") in decoded
        assert all(isinstance(v, int) for row in relation.rows for v in row)

    def test_two_edge_path_query(self, figure1_string_store):
        edges = [
            Edge("person", "founded", "company"),
            Edge("company", "headquartered_in", "city"),
        ]
        relation = evaluate_query_edges(figure1_string_store, edges)
        projected = relation.distinct_projection(["person", "company"])
        assert ("Jerry Yang", "Yahoo!") in projected
        assert ("Bill Gates", "Microsoft") in projected

    def test_cycle_closing_edge_filters(self, figure1_string_store):
        # person founded company, person lived in city, company HQ in city2,
        # both city and city2 in the same state.
        edges = [
            Edge("person", "founded", "company"),
            Edge("person", "places_lived", "city"),
            Edge("company", "headquartered_in", "hq"),
            Edge("city", "in_state", "state"),
            Edge("hq", "in_state", "state"),
        ]
        relation = evaluate_query_edges(figure1_string_store, edges)
        people = {row[relation.column("person")] for row in relation.rows}
        # Bill Gates lived in Medina (Washington) and Microsoft is in
        # Washington, so he qualifies too; the Californians all qualify.
        assert "Jerry Yang" in people
        assert "Steve Wozniak" in people

    def test_no_match_returns_empty_with_schema(self, figure1_string_store):
        edges = [
            Edge("person", "founded", "company"),
            Edge("person", "board_member", "company2"),
        ]
        relation = evaluate_query_edges(figure1_string_store, edges)
        assert relation.is_empty()
        assert "person" in relation.variables

    def test_injectivity_enforced(self):
        graph = KnowledgeGraph([("a", "likes", "a"), ("a", "likes", "b")])
        store = VerticalPartitionStore(graph, vocabulary=IdentityVocabulary())
        relation = evaluate_query_edges(store, [Edge("x", "likes", "y")])
        assert ("a", "a") not in set(relation.rows)
        assert ("a", "b") in set(relation.rows)

    def test_injectivity_can_be_disabled(self):
        graph = KnowledgeGraph([("a", "likes", "a")])
        store = VerticalPartitionStore(graph, vocabulary=IdentityVocabulary())
        relation = evaluate_query_edges(store, [Edge("x", "likes", "y")], injective=False)
        assert ("a", "a") in set(relation.rows)

    def test_self_loop_query_edge(self):
        graph = KnowledgeGraph([("a", "likes", "a"), ("a", "likes", "b")])
        store = VerticalPartitionStore(graph, vocabulary=IdentityVocabulary())
        relation = evaluate_query_edges(store, [Edge("x", "likes", "x")])
        assert relation.rows == [("a",)]

    def test_max_rows_cap_raises(self, figure1_string_store):
        with pytest.raises(LatticeError):
            evaluate_query_edges(
                figure1_string_store,
                [Edge("person", "nationality", "country")],
                max_rows=2,
            )

    def test_max_rows_cap_applies_to_self_loop_first_edge(self):
        """Regression: the self-loop path of the first edge ``continue``d
        past the cap, so a huge self-loop table bypassed it entirely."""
        graph = KnowledgeGraph()
        for i in range(10):
            graph.add_edge(f"n{i}", "self", f"n{i}")
        store = VerticalPartitionStore(graph)
        with pytest.raises(LatticeError):
            evaluate_query_edges(
                store, [Edge("x", "self", "x")], injective=False, max_rows=3
            )
        # Under the cap the same query still evaluates fine.
        relation = evaluate_query_edges(
            store, [Edge("x", "self", "x")], injective=False, max_rows=100
        )
        assert relation.num_rows == 10

    def test_extend_with_edge_matches_from_scratch(self, figure1_string_store):
        base = evaluate_query_edges(
            figure1_string_store, [Edge("person", "founded", "company")]
        )
        extended = extend_with_edge(
            figure1_string_store, base, Edge("company", "headquartered_in", "city")
        )
        scratch = evaluate_query_edges(
            figure1_string_store,
            [
                Edge("person", "founded", "company"),
                Edge("company", "headquartered_in", "city"),
            ],
        )
        assert set(
            extended.distinct_projection(["person", "company", "city"])
        ) == set(scratch.distinct_projection(["person", "company", "city"]))

    def test_extend_requires_shared_variable(self, figure1_string_store):
        base = evaluate_query_edges(
            figure1_string_store, [Edge("person", "founded", "company")]
        )
        with pytest.raises(LatticeError):
            extend_with_edge(figure1_string_store, base, Edge("city", "in_state", "state"))

    def test_relation_bindings_and_projection(self, figure1_string_store):
        relation = evaluate_query_edges(figure1_string_store, [Edge("p", "founded", "c")])
        bindings = list(relation.bindings())
        assert all(set(b) == {"p", "c"} for b in bindings)
        assert relation.has_variable("p")
        assert not relation.has_variable("zzz")

    def test_empty_edge_list_returns_empty_relation(self, figure1_string_store):
        relation = evaluate_query_edges(figure1_string_store, [])
        assert relation.is_empty()
        assert relation.variables == ()
