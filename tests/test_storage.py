"""Unit tests for the vertical-partition store and the hash-join evaluator."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, LatticeError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.storage.join import Relation, evaluate_query_edges, extend_with_edge
from repro.storage.plan import plan_join_order
from repro.storage.store import VerticalPartitionStore
from repro.storage.table import EdgeTable


class TestEdgeTable:
    def test_add_and_probe(self):
        table = EdgeTable("r", [("a", "b"), ("a", "c"), ("d", "b")])
        assert len(table) == 3
        assert table.probe_subject("a") == [("a", "b"), ("a", "c")]
        assert table.probe_object("b") == [("a", "b"), ("d", "b")]
        assert table.has_row("a", "b")
        assert not table.has_row("b", "a")

    def test_duplicates_ignored(self):
        table = EdgeTable("r", [("a", "b"), ("a", "b")])
        assert len(table) == 1

    def test_subjects_objects_sets(self):
        table = EdgeTable("r", [("a", "b"), ("c", "b")])
        assert table.subjects() == {"a", "c"}
        assert table.objects() == {"b"}

    def test_contains_and_iter(self):
        table = EdgeTable("r", [("a", "b")])
        assert ("a", "b") in table
        assert list(table) == [("a", "b")]


class TestStore:
    def test_one_table_per_label(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        assert store.num_tables == figure1_graph.num_labels
        assert store.num_rows == figure1_graph.num_edges

    def test_table_lookup(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        founded = store.table("founded")
        assert founded.has_row("Jerry Yang", "Yahoo!")
        assert store.cardinality("founded") == len(founded)

    def test_unknown_label(self, figure1_graph):
        store = VerticalPartitionStore(figure1_graph)
        with pytest.raises(GraphError):
            store.table("does_not_exist")
        assert len(store.table_or_empty("does_not_exist")) == 0
        assert store.cardinality("does_not_exist") == 0
        assert not store.has_label("does_not_exist")


class TestJoinPlanning:
    def test_plan_keeps_connectivity(self, figure1_store):
        edges = [
            Edge("Jerry Yang", "founded", "Yahoo!"),
            Edge("Yahoo!", "headquartered_in", "Sunnyvale"),
            Edge("Sunnyvale", "in_state", "California"),
        ]
        plan = plan_join_order(edges, figure1_store)
        seen_nodes = {plan.order[0].subject, plan.order[0].object}
        for edge in plan.order[1:]:
            assert edge.subject in seen_nodes or edge.object in seen_nodes
            seen_nodes.update((edge.subject, edge.object))

    def test_plan_starts_with_most_selective_edge(self, figure1_store):
        edges = [
            Edge("Jerry Yang", "education", "Stanford"),
            Edge("Jerry Yang", "founded", "Yahoo!"),
        ]
        plan = plan_join_order(edges, figure1_store)
        # 'founded' has fewer rows than 'education' in the excerpt.
        assert plan.order[0].label == "founded"

    def test_disconnected_edges_rejected(self, figure1_store):
        edges = [
            Edge("Jerry Yang", "founded", "Yahoo!"),
            Edge("Cupertino", "in_state", "California"),
        ]
        with pytest.raises(LatticeError):
            plan_join_order(edges, figure1_store)

    def test_empty_plan_rejected(self, figure1_store):
        with pytest.raises(LatticeError):
            plan_join_order([], figure1_store)


class TestJoinEvaluation:
    def test_single_edge_query(self, figure1_store):
        relation = evaluate_query_edges(
            figure1_store, [Edge("q_person", "founded", "q_company")]
        )
        assert relation.num_rows == 5
        assert set(relation.variables) == {"q_person", "q_company"}

    def test_two_edge_path_query(self, figure1_store):
        edges = [
            Edge("person", "founded", "company"),
            Edge("company", "headquartered_in", "city"),
        ]
        relation = evaluate_query_edges(figure1_store, edges)
        projected = relation.distinct_projection(["person", "company"])
        assert ("Jerry Yang", "Yahoo!") in projected
        assert ("Bill Gates", "Microsoft") in projected

    def test_cycle_closing_edge_filters(self, figure1_store):
        # person founded company, person lived in city, company HQ in city2,
        # both city and city2 in the same state.
        edges = [
            Edge("person", "founded", "company"),
            Edge("person", "places_lived", "city"),
            Edge("company", "headquartered_in", "hq"),
            Edge("city", "in_state", "state"),
            Edge("hq", "in_state", "state"),
        ]
        relation = evaluate_query_edges(figure1_store, edges)
        people = {row[relation.column("person")] for row in relation.rows}
        # Bill Gates lived in Medina (Washington) and Microsoft is in
        # Washington, so he qualifies too; the Californians all qualify.
        assert "Jerry Yang" in people
        assert "Steve Wozniak" in people

    def test_no_match_returns_empty_with_schema(self, figure1_store):
        edges = [
            Edge("person", "founded", "company"),
            Edge("person", "board_member", "company2"),
        ]
        relation = evaluate_query_edges(figure1_store, edges)
        assert relation.is_empty()
        assert "person" in relation.variables

    def test_injectivity_enforced(self):
        graph = KnowledgeGraph([("a", "likes", "a"), ("a", "likes", "b")])
        store = VerticalPartitionStore(graph)
        relation = evaluate_query_edges(store, [Edge("x", "likes", "y")])
        assert ("a", "a") not in set(relation.rows)
        assert ("a", "b") in set(relation.rows)

    def test_injectivity_can_be_disabled(self):
        graph = KnowledgeGraph([("a", "likes", "a")])
        store = VerticalPartitionStore(graph)
        relation = evaluate_query_edges(store, [Edge("x", "likes", "y")], injective=False)
        assert ("a", "a") in set(relation.rows)

    def test_self_loop_query_edge(self):
        graph = KnowledgeGraph([("a", "likes", "a"), ("a", "likes", "b")])
        store = VerticalPartitionStore(graph)
        relation = evaluate_query_edges(store, [Edge("x", "likes", "x")])
        assert relation.rows == [("a",)]

    def test_max_rows_cap_raises(self, figure1_store):
        with pytest.raises(LatticeError):
            evaluate_query_edges(
                figure1_store,
                [Edge("person", "nationality", "country")],
                max_rows=2,
            )

    def test_extend_with_edge_matches_from_scratch(self, figure1_store):
        base = evaluate_query_edges(figure1_store, [Edge("person", "founded", "company")])
        extended = extend_with_edge(
            figure1_store, base, Edge("company", "headquartered_in", "city")
        )
        scratch = evaluate_query_edges(
            figure1_store,
            [
                Edge("person", "founded", "company"),
                Edge("company", "headquartered_in", "city"),
            ],
        )
        assert set(
            extended.distinct_projection(["person", "company", "city"])
        ) == set(scratch.distinct_projection(["person", "company", "city"]))

    def test_extend_requires_shared_variable(self, figure1_store):
        base = evaluate_query_edges(figure1_store, [Edge("person", "founded", "company")])
        with pytest.raises(LatticeError):
            extend_with_edge(figure1_store, base, Edge("city", "in_state", "state"))

    def test_relation_bindings_and_projection(self, figure1_store):
        relation = evaluate_query_edges(figure1_store, [Edge("p", "founded", "c")])
        bindings = list(relation.bindings())
        assert all(set(b) == {"p", "c"} for b in bindings)
        assert relation.has_variable("p")
        assert not relation.has_variable("zzz")

    def test_empty_edge_list_returns_empty_relation(self, figure1_store):
        relation = evaluate_query_edges(figure1_store, [])
        assert relation.is_empty()
        assert relation.variables == ()
