"""Tests for the on-disk index snapshot subsystem (``storage/snapshot.py``).

Covers the property the warm-start path must guarantee — a loaded
snapshot answers queries byte-identically to the cold build it was saved
from, on random synthetic graphs — plus the failure modes of the
versioned envelope: wrong magic, unsupported version, truncation and
bit-level corruption, all surfaced as ``SnapshotError`` before any pickle
bytes are trusted.
"""

from __future__ import annotations

import struct

import pytest

from repro.cli import main
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.exceptions import SnapshotError
from repro.graph.triples import write_triples
from repro.storage.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    GraphStore,
    read_snapshot_meta,
)


@pytest.fixture(scope="module")
def dataset():
    return FreebaseLikeGenerator(seed=5, scale=0.2).generate()


@pytest.fixture(scope="module")
def snapshot_path(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "freebase.snap"
    GraphStore.build(dataset.graph).save(path)
    return path


def _assert_identical_results(left, right):
    assert [a.entities for a in left.answers] == [a.entities for a in right.answers]
    for first, second in zip(left.answers, right.answers):
        assert first.score == second.score
        assert first.structure_score == second.structure_score
        assert first.content_score == second.content_score


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [2, 7, 21])
    def test_ranked_answers_survive_round_trip(self, seed, tmp_path):
        """Property: load(save(store)) answers byte-identically to the
        cold build, on random synthetic graphs."""
        graph = FreebaseLikeGenerator(seed=seed, scale=0.2).generate()
        config = GQBEConfig(mqg_size=8, k_prime=25, max_join_rows=100_000)
        cold = GQBE(graph.graph, config=config)

        path = tmp_path / "store.snap"
        GraphStore(cold.graph, cold.statistics, cold.store).save(path)
        warm = GQBE(config=config, graph_store=GraphStore.load(path))

        for table_name in graph.table_names()[:2]:
            query_tuple = tuple(graph.table(table_name)[0])
            _assert_identical_results(
                cold.query(query_tuple, k=10), warm.query(query_tuple, k=10)
            )

    def test_round_trip_preserves_shape_and_flags(self, dataset, snapshot_path):
        loaded = GraphStore.load(snapshot_path)
        assert loaded.graph.num_edges == dataset.graph.num_edges
        assert loaded.graph.num_nodes == dataset.graph.num_nodes
        assert loaded.store.num_rows == dataset.graph.num_edges
        assert loaded.columnar and loaded.intern_entities
        assert loaded.statistics.total_edges == dataset.graph.num_edges

    def test_rows_engine_round_trip(self, dataset, tmp_path):
        path = tmp_path / "rows.snap"
        GraphStore.build(dataset.graph, columnar=False).save(path)
        loaded = GraphStore.load(path)
        assert not loaded.columnar
        system = GQBE.from_snapshot(path)
        assert not system.store.is_columnar

    def test_meta_readable_without_adopting_store(self, snapshot_path, dataset):
        meta = read_snapshot_meta(snapshot_path)
        assert meta["columnar"] is True
        assert meta["intern_entities"] is True
        assert meta["num_edges"] == dataset.graph.num_edges

    def test_from_snapshot_rejects_mismatched_config(self, snapshot_path):
        with pytest.raises(SnapshotError):
            GQBE.from_snapshot(snapshot_path, config=GQBEConfig(columnar=False))
        with pytest.raises(SnapshotError):
            GQBE.from_snapshot(
                snapshot_path, config=GQBEConfig(intern_entities=False)
            )


class TestEnvelopeFailureModes:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bogus.snap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(SnapshotError, match="bad magic"):
            GraphStore.load(path)

    def test_too_short_to_hold_a_header(self, tmp_path):
        path = tmp_path / "tiny.snap"
        path.write_bytes(MAGIC)
        with pytest.raises(SnapshotError, match="bad magic"):
            GraphStore.load(path)

    def test_version_mismatch(self, snapshot_path, tmp_path):
        data = bytearray(snapshot_path.read_bytes())
        data[8:12] = struct.pack("<I", FORMAT_VERSION + 1)
        path = tmp_path / "future.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="format version"):
            GraphStore.load(path)

    def test_truncated_payload(self, snapshot_path, tmp_path):
        data = snapshot_path.read_bytes()
        path = tmp_path / "truncated.snap"
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(SnapshotError, match="truncated"):
            GraphStore.load(path)

    def test_flipped_payload_byte_fails_checksum(self, snapshot_path, tmp_path):
        data = bytearray(snapshot_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path = tmp_path / "corrupt.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="corrupt"):
            GraphStore.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            GraphStore.load(tmp_path / "does_not_exist.snap")

    def test_meta_reader_wraps_read_errors(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot_meta(tmp_path / "does_not_exist.snap")


class TestCLIWorkflow:
    def test_build_index_then_query(self, tmp_path, capsys, figure1_graph):
        triples = tmp_path / "fig1.tsv"
        write_triples(sorted(figure1_graph.edges), triples)
        snapshot = tmp_path / "fig1.snap"

        assert main(["build-index", str(triples), str(snapshot)]) == 0
        assert "indexed" in capsys.readouterr().out
        assert snapshot.exists()

        code = main(
            [
                "query",
                "--snapshot",
                str(snapshot),
                "--tuple",
                "Jerry Yang,Yahoo!",
                "--k",
                "3",
                "--mqg-size",
                "8",
            ]
        )
        assert code == 0
        assert "Top-3 answers" in capsys.readouterr().out

    def test_query_rejects_graph_plus_snapshot(self, tmp_path, capsys):
        code = main(
            [
                "query",
                "some.tsv",
                "--snapshot",
                "some.snap",
                "--tuple",
                "a,b",
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_query_requires_a_source(self, capsys):
        code = main(["query", "--tuple", "a,b"])
        assert code == 2
        assert "graph file or --snapshot" in capsys.readouterr().err
