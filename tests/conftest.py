"""Shared fixtures for the GQBE test suite."""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.example_graph import figure1_excerpt, figure1_ground_truth
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.statistics import GraphStatistics
from repro.storage.store import VerticalPartitionStore


@pytest.fixture(scope="session")
def figure1_graph() -> KnowledgeGraph:
    """The Fig. 1 excerpt used throughout the paper's running example."""
    return figure1_excerpt()


@pytest.fixture(scope="session")
def figure1_truth() -> list[tuple[str, str]]:
    """Founder-company pairs other than the query tuple."""
    return figure1_ground_truth()


@pytest.fixture(scope="session")
def figure1_stats(figure1_graph: KnowledgeGraph) -> GraphStatistics:
    return GraphStatistics(figure1_graph)


@pytest.fixture(scope="session")
def figure1_store(figure1_graph: KnowledgeGraph) -> VerticalPartitionStore:
    return VerticalPartitionStore(figure1_graph)


@pytest.fixture(scope="session")
def figure1_system(figure1_graph: KnowledgeGraph) -> GQBE:
    """A GQBE instance over the Fig. 1 excerpt."""
    return GQBE(figure1_graph, config=GQBEConfig(mqg_size=10))


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small Freebase-like dataset for integration tests."""
    return FreebaseLikeGenerator(seed=3, scale=0.2).generate()


@pytest.fixture(scope="session")
def tiny_system(tiny_dataset) -> GQBE:
    """A GQBE instance over the tiny synthetic dataset."""
    config = GQBEConfig(mqg_size=8, k_prime=20, max_join_rows=100_000)
    return GQBE(tiny_dataset.graph, config=config)


@pytest.fixture()
def chain_graph() -> KnowledgeGraph:
    """A small deterministic chain/star graph for unit tests.

    a --r1--> b --r2--> c --r3--> d, with extra labeled edges off b and c.
    """
    graph = KnowledgeGraph()
    graph.add_edge("a", "r1", "b")
    graph.add_edge("b", "r2", "c")
    graph.add_edge("c", "r3", "d")
    graph.add_edge("b", "attr", "x")
    graph.add_edge("c", "attr", "y")
    graph.add_edge("e", "r1", "b")
    return graph
