"""Unit tests for neighborhood graph extraction (Definition 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError, UnknownEntityError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.neighborhood import (
    neighborhood_graph,
    query_entity_distances,
)


class TestValidation:
    def test_unknown_entity_raises(self, figure1_graph):
        with pytest.raises(UnknownEntityError):
            neighborhood_graph(figure1_graph, ("Jerry Yang", "Nobody"), d=2)

    def test_empty_tuple_raises(self, figure1_graph):
        with pytest.raises(QueryError):
            neighborhood_graph(figure1_graph, (), d=2)

    def test_duplicate_entities_raise(self, figure1_graph):
        with pytest.raises(QueryError):
            neighborhood_graph(figure1_graph, ("Yahoo!", "Yahoo!"), d=2)

    def test_non_positive_d_raises(self, figure1_graph):
        with pytest.raises(QueryError):
            neighborhood_graph(figure1_graph, ("Yahoo!",), d=0)


class TestDistances:
    def test_multi_source_distances(self, figure1_graph):
        distances = query_entity_distances(figure1_graph, ("Jerry Yang", "Yahoo!"))
        assert distances["Jerry Yang"] == 0
        assert distances["Yahoo!"] == 0
        assert distances["Sunnyvale"] == 1
        assert distances["California"] == 2

    def test_cutoff_limits_radius(self, figure1_graph):
        distances = query_entity_distances(figure1_graph, ("Jerry Yang",), cutoff=1)
        assert "California" not in distances
        assert distances["Stanford"] == 1


class TestNeighborhoodGraph:
    def test_contains_query_entities(self, figure1_graph):
        neighborhood = neighborhood_graph(figure1_graph, ("Jerry Yang", "Yahoo!"), d=2)
        assert neighborhood.contains_query_entities()
        assert neighborhood.graph.has_node("Jerry Yang")
        assert neighborhood.graph.has_node("Yahoo!")

    def test_nodes_within_d_hops_only(self, figure1_graph):
        neighborhood = neighborhood_graph(figure1_graph, ("Jerry Yang", "Yahoo!"), d=1)
        # Distance-2 nodes such as California must be excluded at d=1.
        assert not neighborhood.graph.has_node("California")
        assert neighborhood.graph.has_node("Sunnyvale")

    def test_every_node_has_a_distance_within_d(self, figure1_graph):
        d = 2
        neighborhood = neighborhood_graph(figure1_graph, ("Jerry Yang", "Yahoo!"), d=d)
        assert set(neighborhood.distances) == set(neighborhood.graph.nodes)
        assert all(dist <= d for dist in neighborhood.distances.values())

    def test_edges_lie_on_short_paths(self, figure1_graph):
        d = 2
        neighborhood = neighborhood_graph(figure1_graph, ("Jerry Yang", "Yahoo!"), d=d)
        for edge in neighborhood.graph.edges:
            assert min(
                neighborhood.distances[edge.subject],
                neighborhood.distances[edge.object],
            ) <= d - 1

    def test_neighborhood_is_subgraph_of_data_graph(self, figure1_graph):
        neighborhood = neighborhood_graph(figure1_graph, ("Jerry Yang", "Yahoo!"), d=2)
        for edge in neighborhood.graph.edges:
            assert figure1_graph.has_edge(*edge)

    def test_larger_d_grows_the_neighborhood(self, figure1_graph):
        small = neighborhood_graph(figure1_graph, ("Jerry Yang",), d=1)
        large = neighborhood_graph(figure1_graph, ("Jerry Yang",), d=3)
        assert small.num_nodes < large.num_nodes
        assert small.num_edges < large.num_edges

    def test_single_entity_neighborhood(self, figure1_graph):
        neighborhood = neighborhood_graph(figure1_graph, ("Stanford",), d=1)
        # Stanford's direct neighbours are the people educated there.
        assert neighborhood.graph.has_node("Jerry Yang")
        assert neighborhood.graph.has_node("Sergey Brin")
        assert not neighborhood.graph.has_node("Yahoo!")

    def test_distance_accessor(self, figure1_graph):
        neighborhood = neighborhood_graph(figure1_graph, ("Jerry Yang",), d=2)
        assert neighborhood.distance("Jerry Yang") == 0
        with pytest.raises(KeyError):
            neighborhood.distance("Not In Graph")

    def test_disconnected_entities_produce_disconnected_neighborhood(self):
        graph = KnowledgeGraph([("a", "r", "b"), ("c", "r", "d")])
        neighborhood = neighborhood_graph(graph, ("a", "c"), d=2)
        assert not neighborhood.graph.is_weakly_connected()
