"""Equivalence of the interned int engine and the string reference engine.

The interning layer (``storage/vocabulary.py``) must be a pure performance
change: a store built with the identity vocabulary runs the exact same join
and exploration code on raw entity strings (the pre-interning engine), so
every query must return byte-identical ranked answers on both paths.

This module also cross-checks the heap-based frontier bookkeeping of
:class:`BestFirstExplorer` against the naive per-iteration scans it
replaced, and pins the upper-frontier antichain invariant (Algorithm 3).
"""

from __future__ import annotations

import pytest

from repro.baselines.breadth_first import BreadthFirstExplorer
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.discovery.mqg import MaximalQueryGraph
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.lattice.exploration import STRUCTURE, BestFirstExplorer
from repro.lattice.query_graph import LatticeSpace
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import IdentityVocabulary


def _engine_pair(graph) -> tuple[GQBE, GQBE]:
    config = GQBEConfig(mqg_size=8, k_prime=25, max_join_rows=100_000)
    reference_config = GQBEConfig(
        mqg_size=8, k_prime=25, max_join_rows=100_000, intern_entities=False
    )
    return GQBE(graph, config=config), GQBE(graph, config=reference_config)


def _assert_same_answers(interned_result, reference_result):
    assert [a.entities for a in interned_result.answers] == [
        a.entities for a in reference_result.answers
    ]
    for left, right in zip(interned_result.answers, reference_result.answers):
        assert left.rank == right.rank
        assert left.score == pytest.approx(right.score, abs=1e-9)
        assert left.structure_score == pytest.approx(right.structure_score, abs=1e-9)
        assert left.content_score == pytest.approx(right.content_score, abs=1e-9)


class TestInternedEngineMatchesStringReference:
    @pytest.mark.parametrize("seed", [1, 5, 9, 13, 42])
    def test_random_synthetic_graphs(self, seed):
        """Property: on random synthetic graphs, both engines agree exactly."""
        dataset = FreebaseLikeGenerator(seed=seed, scale=0.2).generate()
        interned, reference = _engine_pair(dataset.graph)
        assert isinstance(reference.store.vocabulary, IdentityVocabulary)
        for table_name in dataset.table_names()[:3]:
            query_tuple = tuple(dataset.table(table_name)[0])
            interned_result = interned.query(query_tuple, k=10)
            reference_result = reference.query(query_tuple, k=10)
            _assert_same_answers(interned_result, reference_result)
            # The engines must also do identical work, not just agree on
            # the output: interning may not change the exploration order.
            assert (
                interned_result.statistics.nodes_evaluated
                == reference_result.statistics.nodes_evaluated
            )
            assert (
                interned_result.statistics.null_nodes
                == reference_result.statistics.null_nodes
            )

    def test_multi_tuple_queries_agree(self):
        dataset = FreebaseLikeGenerator(seed=3, scale=0.2).generate()
        interned, reference = _engine_pair(dataset.graph)
        table = dataset.table(dataset.table_names()[0])
        tuples = [tuple(table[0]), tuple(table[1])]
        _assert_same_answers(
            interned.query_multi(tuples, k=10), reference.query_multi(tuples, k=10)
        )

    def test_figure1_explorers_agree(self, figure1_system, figure1_graph):
        mqg = figure1_system.discover_query_graph(("Jerry Yang", "Yahoo!"))
        space = LatticeSpace(mqg)
        excluded = {("Jerry Yang", "Yahoo!")}
        interned_store = VerticalPartitionStore(figure1_graph)
        string_store = VerticalPartitionStore(
            figure1_graph, vocabulary=IdentityVocabulary()
        )
        for explorer_cls in (BestFirstExplorer, BreadthFirstExplorer):
            interned_run = explorer_cls(
                space, interned_store, k=10, excluded_tuples=excluded
            ).run()
            string_run = explorer_cls(
                space, string_store, k=10, excluded_tuples=excluded
            ).run()
            assert interned_run.answer_tuples() == string_run.answer_tuples()
            for left, right in zip(interned_run.answers, string_run.answers):
                assert left.score == right.score
                assert left.structure_score == right.structure_score
                assert left.content_score == right.content_score
                assert left.query_graph_mask == right.query_graph_mask


class _CrossCheckingExplorer(BestFirstExplorer):
    """Asserts the heap bookkeeping matches the naive scans it replaced."""

    def _pop_best_mask(self):
        expected = None
        if self._lower_frontier:
            expected = max(
                self._lower_frontier,
                key=lambda m: (self._lower_frontier[m], -m.bit_count(), m),
            )
        popped = super()._pop_best_mask()
        assert popped == expected
        return popped

    def _stage_one_threshold(self):
        value = super()._stage_one_threshold()
        records = self._answers.records
        if len(records) < self.k_prime:
            assert value is None
        else:
            scores = sorted(
                (record[STRUCTURE] for record in records.values()), reverse=True
            )
            assert value == scores[self.k_prime - 1]
        return value


class TestHeapBookkeeping:
    def test_heaps_match_naive_scans(self, figure1_system, figure1_store):
        mqg = figure1_system.discover_query_graph(("Jerry Yang", "Yahoo!"))
        space = LatticeSpace(mqg)
        checked = _CrossCheckingExplorer(
            space, figure1_store, k=5, k_prime=5,
            excluded_tuples={("Jerry Yang", "Yahoo!")},
        ).run()
        plain = BestFirstExplorer(
            space, figure1_store, k=5, k_prime=5,
            excluded_tuples={("Jerry Yang", "Yahoo!")},
        ).run()
        assert checked.answer_tuples() == plain.answer_tuples()
        assert checked.statistics.nodes_evaluated == plain.statistics.nodes_evaluated

    def test_heaps_match_naive_scans_on_synthetic(self):
        dataset = FreebaseLikeGenerator(seed=7, scale=0.2).generate()
        system = GQBE(dataset.graph, config=GQBEConfig(mqg_size=8, max_join_rows=100_000))
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        mqg = system.discover_query_graph(query_tuple)
        space = LatticeSpace(mqg)
        result = _CrossCheckingExplorer(
            space, system.store, k=10, k_prime=10, excluded_tuples={query_tuple}
        ).run()
        assert result.statistics.nodes_evaluated > 0


class _AntichainCheckingExplorer(BestFirstExplorer):
    """Asserts the UF is an antichain after every Algorithm 3 recompute."""

    recomputations = 0

    def _recompute_upper_frontier(self, null_mask):
        super()._recompute_upper_frontier(null_mask)
        type(self).recomputations += 1
        frontier = list(self._upper_frontier)
        for i, a in enumerate(frontier):
            for b in frontier[i + 1:]:
                assert (a | b) != a and (a | b) != b, (
                    f"UF not an antichain: {a:b} and {b:b} are nested"
                )


class TestUpperFrontierAntichain:
    def test_recompute_evicts_subsumed_members(self):
        """Regression: a candidate that subsumes a retained UF member must
        evict it, otherwise the non-maximal member survives forever."""
        graph = KnowledgeGraph(
            [("a", "r1", "b"), ("b", "r2", "c"), ("c", "r3", "d")]
        )
        weights = {edge: 1.0 for edge in graph.edges}
        mqg = MaximalQueryGraph(
            graph=graph,
            query_tuple=("a",),
            edge_weights=weights,
            core_edges=frozenset(),
        )
        space = LatticeSpace(mqg)
        explorer = BestFirstExplorer(space, VerticalPartitionStore(graph), k=1)
        mask_ab = space.mask_of([Edge("a", "r1", "b")])
        mask_cd = space.mask_of([Edge("c", "r3", "d")])
        candidate = space.mask_of([Edge("a", "r1", "b"), Edge("b", "r2", "c")])
        # Seed a (hypothetically corrupted) non-antichain-prone state: the
        # full mask will be pruned and replaced by `candidate`, which
        # strictly subsumes the retained member `mask_ab`.
        explorer._upper_frontier = {space.full_mask, mask_ab}
        explorer._null_masks.append(mask_cd)
        explorer._recompute_upper_frontier(mask_cd)
        assert explorer._upper_frontier == {candidate}

    def test_antichain_invariant_holds_during_runs(self, tiny_dataset):
        _AntichainCheckingExplorer.recomputations = 0
        system = GQBE(
            tiny_dataset.graph,
            config=GQBEConfig(mqg_size=8, k_prime=20, max_join_rows=100_000),
        )
        for table_name in tiny_dataset.table_names()[:4]:
            query_tuple = tuple(tiny_dataset.table(table_name)[0])
            mqg = system.discover_query_graph(query_tuple)
            space = LatticeSpace(mqg)
            _AntichainCheckingExplorer(
                space, system.store, k=10, excluded_tuples={query_tuple}
            ).run()
        # The invariant check is only meaningful if pruning happened.
        assert _AntichainCheckingExplorer.recomputations > 0
