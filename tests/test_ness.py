"""Tests for the adapted NESS baseline."""

from __future__ import annotations

import pytest

from repro.baselines.ness import NESSMatcher


@pytest.fixture(scope="module")
def ness(figure1_graph):
    return NESSMatcher(figure1_graph)


@pytest.fixture(scope="module")
def jerry_mqg(figure1_system):
    return figure1_system.discover_query_graph(("Jerry Yang", "Yahoo!"))


class TestNESS:
    def test_returns_founder_like_tuples(self, ness, jerry_mqg, figure1_truth):
        result = ness.query(jerry_mqg, k=10, excluded_tuples={("Jerry Yang", "Yahoo!")})
        answers = result.answer_tuples()
        assert answers
        # At least some genuine founder-company pairs should be found.
        assert any(answer in figure1_truth for answer in answers)

    def test_excludes_query_tuple(self, ness, jerry_mqg):
        result = ness.query(jerry_mqg, k=10, excluded_tuples={("Jerry Yang", "Yahoo!")})
        assert ("Jerry Yang", "Yahoo!") not in result.answer_tuples()

    def test_scores_monotone(self, ness, jerry_mqg):
        result = ness.query(jerry_mqg, k=10)
        scores = [answer.score for answer in result.answers]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, ness, jerry_mqg):
        result = ness.query(jerry_mqg, k=2)
        assert len(result.answers) <= 2

    def test_answer_arity_matches_query(self, ness, jerry_mqg):
        result = ness.query(jerry_mqg, k=10)
        assert all(len(answer.entities) == 2 for answer in result.answers)

    def test_no_duplicate_entities_within_answer(self, ness, jerry_mqg):
        result = ness.query(jerry_mqg, k=10)
        for answer in result.answers:
            assert len(set(answer.entities)) == len(answer.entities)

    def test_statistics_populated(self, ness, jerry_mqg):
        result = ness.query(jerry_mqg, k=5)
        assert result.statistics.candidates_considered > 0
        assert result.statistics.pivot in ("Jerry Yang", "Yahoo!")
        assert result.statistics.elapsed_seconds >= 0.0

    def test_single_entity_query(self, figure1_system, ness):
        mqg = figure1_system.discover_query_graph(("Stanford",))
        result = ness.query(mqg, k=5, excluded_tuples={("Stanford",)})
        assert all(len(answer.entities) == 1 for answer in result.answers)
        assert ("Stanford",) not in result.answer_tuples()

    def test_gqbe_is_at_least_as_accurate_on_the_excerpt(
        self, figure1_system, ness, jerry_mqg, figure1_truth
    ):
        """The paper's headline accuracy comparison, on the tiny excerpt."""
        gqbe_answers = figure1_system.query(("Jerry Yang", "Yahoo!"), k=4).answer_tuples()
        ness_answers = ness.query(
            jerry_mqg, k=4, excluded_tuples={("Jerry Yang", "Yahoo!")}
        ).answer_tuples()
        truth = set(figure1_truth)
        gqbe_hits = sum(1 for a in gqbe_answers if a in truth)
        ness_hits = sum(1 for a in ness_answers if a in truth)
        assert gqbe_hits >= ness_hits
