"""Differential tests for live ingest (delta overlay + compaction).

The write path's core promise: a system serving (base snapshot + ingested
delta) answers **byte-identically** to a system built from scratch over
the merged edge set.  These tests split seeded random triple streams into
(base, delta) at varying ratios and pin that promise across:

* the v3 mapped base (``DeltaKnowledgeGraph`` overlay over the CSR view),
* the v1 owned base (in-place mutation of the owned graph),
* pooled execution (workers reopen the snapshot and replay the delta),
* the compacted generation (the overlay folded back to disk and reloaded).

Duplicate triples — re-sent base edges and re-sent delta edges — must be
counted and dropped without perturbing any state (vocabulary ids, adjacency
order, statistics), which the byte-identity assertions would expose.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.exceptions import GraphError
from repro.graph.delta import DeltaKnowledgeGraph
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.storage.snapshot import GraphStore


@pytest.fixture(scope="module")
def dataset():
    return FreebaseLikeGenerator(seed=11, scale=0.15).generate()


@pytest.fixture(scope="module")
def config():
    return GQBEConfig(mqg_size=8, k_prime=25, max_join_rows=100_000)


def _answer_key(result):
    return [
        (a.rank, a.entities, a.score, a.structure_score, a.content_score)
        for a in result.answers
    ]


def _split_stream(dataset, ratio: float, seed: int):
    """Split the dataset's edges into (base, delta, duplicates).

    The delta keeps stream order (ingest order matters for adjacency
    append order); duplicates are seeded re-draws from both halves plus
    a few brand-new triples touching fresh entities and labels.
    """
    edges = list(dataset.graph.edges)
    cut = max(1, int(len(edges) * ratio))
    base = edges[:cut]
    delta = [(e.subject, e.label, e.object) for e in edges[cut:]]
    rng = random.Random(seed)
    duplicates = [
        (e.subject, e.label, e.object)
        for e in rng.sample(base, k=min(5, len(base)))
    ]
    if delta:
        duplicates.extend(rng.sample(delta, k=min(5, len(delta))))
    fresh = [
        ("IngestedFounder_A", "founded", base[0].subject),
        (base[0].object, "acquired", "IngestedCompany_B"),
        ("IngestedFounder_A", "born_in", "IngestedCity_C"),
    ]
    return base, delta + fresh, duplicates


def _query_tuples(dataset, union_graph, count=2):
    tuples = []
    for table_name in dataset.table_names():
        candidate = tuple(dataset.table(table_name)[0])
        if all(union_graph.has_node(entity) for entity in candidate):
            tuples.append(candidate)
        if len(tuples) == count:
            break
    assert tuples, "no usable query tuples in the dataset"
    return tuples


def _merged_reference(config, base, delta):
    merged = KnowledgeGraph(base)
    for subject, label, obj in delta:
        merged.add_edge(subject, label, obj)
    return GQBE(merged, config=config)


class TestOverlayEquivalence:
    @pytest.mark.parametrize("ratio", [0.25, 0.5, 0.9])
    def test_v3_overlay_matches_merged_build(
        self, dataset, config, tmp_path, ratio
    ):
        base, delta, duplicates = _split_stream(dataset, ratio, seed=ratio)
        directory = tmp_path / "base.snapdir3"
        GraphStore.build(KnowledgeGraph(base)).save(directory, format="v3")

        overlay = GQBE(config=config, graph_store=GraphStore.load(directory))
        result = overlay.ingest(delta + duplicates)
        assert result["applied"] == len(delta)
        assert result["duplicates"] == len(duplicates)
        assert result["delta_edges"] == len(delta)
        assert isinstance(overlay.graph, DeltaKnowledgeGraph)

        reference = _merged_reference(config, base, delta)
        assert overlay.graph.num_edges == reference.graph.num_edges
        assert overlay.graph.num_nodes == reference.graph.num_nodes
        for query_tuple in _query_tuples(dataset, reference.graph):
            assert _answer_key(overlay.query(query_tuple, k=10)) == _answer_key(
                reference.query(query_tuple, k=10)
            )

    def test_v1_owned_base_matches_merged_build(self, dataset, config, tmp_path):
        base, delta, duplicates = _split_stream(dataset, 0.5, seed=99)
        path = tmp_path / "base.snap"
        GraphStore.build(KnowledgeGraph(base)).save(path)

        overlay = GQBE(config=config, graph_store=GraphStore.load(path))
        result = overlay.ingest(delta + duplicates)
        assert result["applied"] == len(delta)
        assert result["duplicates"] == len(duplicates)
        # A v1 base loads as an owned graph: the delta mutates it in
        # place instead of stacking an overlay.
        assert isinstance(overlay.graph, KnowledgeGraph)

        reference = _merged_reference(config, base, delta)
        for query_tuple in _query_tuples(dataset, reference.graph):
            assert _answer_key(overlay.query(query_tuple, k=10)) == _answer_key(
                reference.query(query_tuple, k=10)
            )

    def test_repeat_ingest_is_idempotent(self, dataset, config, tmp_path):
        base, delta, _ = _split_stream(dataset, 0.5, seed=3)
        directory = tmp_path / "base.snapdir3"
        GraphStore.build(KnowledgeGraph(base)).save(directory, format="v3")
        overlay = GQBE(config=config, graph_store=GraphStore.load(directory))
        first = overlay.ingest(delta)
        again = overlay.ingest(delta)
        assert first["applied"] == len(delta)
        assert again["applied"] == 0
        assert again["duplicates"] == len(delta)
        assert again["delta_edges"] == len(delta)
        assert overlay.pending_delta == [tuple(t) for t in delta]

    def test_malformed_triples_are_rejected_atomically(
        self, dataset, config, tmp_path
    ):
        base, delta, _ = _split_stream(dataset, 0.5, seed=4)
        directory = tmp_path / "base.snapdir3"
        GraphStore.build(KnowledgeGraph(base)).save(directory, format="v3")
        overlay = GQBE(config=config, graph_store=GraphStore.load(directory))
        with pytest.raises(GraphError):
            overlay.ingest([delta[0], ("subject", "", "object")])
        # Validation happens before any mutation: nothing was applied.
        assert overlay.pending_delta == []


class TestPooledEquivalence:
    def test_pooled_workers_replay_the_delta(self, dataset, config, tmp_path):
        base, delta, _ = _split_stream(dataset, 0.5, seed=21)
        directory = tmp_path / "base.snapdir3"
        GraphStore.build(KnowledgeGraph(base)).save(directory, format="v3")
        pooled_config = replace(config, execution="pool", pool_workers=2)
        pooled = GQBE.from_snapshot(directory, config=pooled_config)
        try:
            pooled.ingest(delta)
            reference = _merged_reference(config, base, delta)
            tuples = _query_tuples(dataset, reference.graph)
            results = pooled.query_batch([list(t) for t in tuples], k=10)
            for query_tuple, result in zip(tuples, results):
                assert _answer_key(result) == _answer_key(
                    reference.query(query_tuple, k=10)
                )
        finally:
            pooled.close()


class TestCompactedEquivalence:
    @pytest.mark.parametrize("fmt", ["v1", "v3"])
    def test_compacted_generation_matches_merged_build(
        self, dataset, config, tmp_path, fmt
    ):
        base, delta, _ = _split_stream(dataset, 0.5, seed=42)
        directory = tmp_path / "base.snapdir3"
        GraphStore.build(KnowledgeGraph(base)).save(directory, format="v3")
        overlay = GQBE(config=config, graph_store=GraphStore.load(directory))
        overlay.ingest(delta)

        compacted_path = tmp_path / f"compacted.{fmt}"
        overlay.graph_store.save(compacted_path, format=fmt)
        compacted = GQBE(
            config=config, graph_store=GraphStore.load(compacted_path)
        )
        # The fold is complete: the reloaded generation carries no delta.
        assert compacted.pending_delta == []

        reference = _merged_reference(config, base, delta)
        assert compacted.graph.num_edges == reference.graph.num_edges
        for query_tuple in _query_tuples(dataset, reference.graph):
            assert _answer_key(compacted.query(query_tuple, k=10)) == _answer_key(
                reference.query(query_tuple, k=10)
            )
