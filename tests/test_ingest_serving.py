"""Serving-layer tests for the write path: ingest, compaction, crash safety.

Pins the operational guarantees of ``POST /admin/ingest`` and
``POST /admin/compact`` on both HTTP frontends:

* ingested edges become queryable immediately and the answer cache is
  invalidated — no response sent after the ingest ack describes the
  pre-ingest graph;
* concurrent queries racing ingest bursts and a compaction swap each see
  a *consistent* state: every response matches exactly one of the
  cumulative ground-truth stages, never a torn mixture;
* compaction writes a fresh generation next to the base via tmp-dir +
  atomic rename; a writer crash mid-flush leaves the server answering
  from the live delta, and restart resolution picks the newest valid
  generation while sweeping ``.tmp`` wreckage;
* ``--compact-threshold`` (``GQBEConfig.serve_compact_threshold``)
  triggers the same fold automatically in the background;
* ``/stats`` counters and ``/metrics`` series reconcile with the traffic
  the test itself issued.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.example_graph import figure1_excerpt
from repro.exceptions import EvaluationError, SnapshotError
from repro.serving.async_server import AsyncGQBEServer
from repro.serving.metrics import parse_prometheus_text
from repro.serving.server import GQBEServer
from repro.storage.generations import (
    generation_number,
    generation_path,
    generation_root,
    list_generations,
    next_generation_path,
    orphan_tmp_paths,
    prune_generations,
    resolve_latest_generation,
)
from repro.storage.snapshot import GraphStore

QUERY = ["Jerry Yang", "Yahoo!"]

#: Ingest bursts shaped like the Fig. 1 schema: each adds a founder and
#: a company wired into the existing graph, changing the answer list for
#: the running-example query.
BURSTS = [
    [
        ["Ada Lovelace", "founded", "Analytical Co"],
        ["Ada Lovelace", "education", "Stanford"],
        ["Ada Lovelace", "nationality", "USA"],
        ["Analytical Co", "headquartered_in", "Sunnyvale"],
        ["Analytical Co", "industry", "Technology"],
    ],
    [
        ["Grace Hopper", "founded", "Compiler Co"],
        ["Grace Hopper", "education", "Stanford"],
        ["Grace Hopper", "nationality", "USA"],
        ["Compiler Co", "headquartered_in", "Mountain View"],
        ["Compiler Co", "industry", "Technology"],
    ],
]


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def _request(server, method, path, payload=None, headers=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        parsed = (
            json.loads(raw) if "application/json" in content_type else raw.decode()
        )
        return response.status, parsed
    finally:
        connection.close()


def _post(server, path, payload=None, headers=None):
    return _request(server, "POST", path, payload, headers)


def _get(server, path):
    return _request(server, "GET", path)


def _answer_entities(body):
    return [tuple(answer["entities"]) for answer in body["answers"]]


def _expected_entities(graph, k=10):
    # Default config, matching what GQBE.from_snapshot builds for the
    # served snapshot — answers are only comparable under equal configs.
    result = GQBE(graph).query(tuple(QUERY), k=k)
    return [tuple(answer.entities) for answer in result.answers]


def _snapshot(figure1_graph, tmp_path, fmt="v3"):
    path = tmp_path / ("fig1.snapdir" if fmt == "v3" else "fig1.snap")
    GraphStore.build(figure1_graph).save(path, format=fmt)
    return path


def _merged(figure1_graph, *bursts):
    merged = figure1_graph.copy()
    for burst in bursts:
        for subject, label, obj in burst:
            merged.add_edge(subject, label, obj)
    return merged


# ----------------------------------------------------------------------
# generation layout unit tests
# ----------------------------------------------------------------------
class TestGenerations:
    def test_path_arithmetic(self, tmp_path):
        root = tmp_path / "data.snapdir"
        gen3 = generation_path(root, 3)
        assert gen3.name == "data.snapdir.gen3"
        assert generation_number(gen3) == 3
        assert generation_number(root) == 0
        assert generation_root(gen3) == root
        # Path arithmetic is closed: deriving from a generation path
        # lands on the same family.
        assert generation_path(gen3, 5).name == "data.snapdir.gen5"

    def test_list_and_next(self, figure1_graph, tmp_path):
        root = _snapshot(figure1_graph, tmp_path)
        assert [number for number, _ in list_generations(root)] == [0]
        assert next_generation_path(root).name == root.name + ".gen1"
        GraphStore.build(figure1_graph).save(
            generation_path(root, 1), format="v3"
        )
        assert [number for number, _ in list_generations(root)] == [0, 1]
        assert next_generation_path(root).name == root.name + ".gen2"
        # .tmp wreckage is never listed as a generation.
        (tmp_path / (root.name + ".gen2.tmp")).mkdir()
        assert [number for number, _ in list_generations(root)] == [0, 1]

    def test_resolve_prefers_newest_valid_and_sweeps_orphans(
        self, figure1_graph, tmp_path
    ):
        root = _snapshot(figure1_graph, tmp_path)
        GraphStore.build(figure1_graph).save(
            generation_path(root, 1), format="v3"
        )
        # gen2 is a torn write: a directory with no manifest.
        generation_path(root, 2).mkdir()
        orphan = tmp_path / (root.name + ".gen3.tmp")
        orphan.mkdir()
        assert orphan_tmp_paths(root) == [orphan]
        resolved = resolve_latest_generation(root)
        assert resolved == generation_path(root, 1)
        assert not orphan.exists()
        # The torn gen2 is skipped, not deleted — an operator may want
        # the evidence; only .tmp wreckage is swept.
        assert generation_path(root, 2).exists()

    def test_resolve_falls_back_to_given_path(self, tmp_path):
        missing = tmp_path / "never-built.snapdir"
        assert resolve_latest_generation(missing) == missing

    def test_prune_keeps_newest_and_never_the_root(self, figure1_graph, tmp_path):
        root = _snapshot(figure1_graph, tmp_path)
        for number in (1, 2, 3):
            GraphStore.build(figure1_graph).save(
                generation_path(root, number), format="v3"
            )
        removed = prune_generations(generation_path(root, 3), keep=2)
        assert removed == [generation_path(root, 1)]
        assert root.exists()
        assert not generation_path(root, 1).exists()
        assert generation_path(root, 2).exists()
        assert generation_path(root, 3).exists()


# ----------------------------------------------------------------------
# threaded frontend
# ----------------------------------------------------------------------
class TestThreadedIngest:
    @pytest.fixture()
    def server(self, figure1_graph, tmp_path):
        path = _snapshot(figure1_graph, tmp_path)
        server = GQBEServer.from_snapshot(
            path, port=0, batch_window_seconds=0.002, cache_size=64
        ).start()
        yield server
        server.stop()

    def test_ingest_is_immediately_queryable(self, server, figure1_graph):
        # The new founder is unknown before the ingest...
        status, body = _post(server, "/query", {"tuple": ["Ada Lovelace"]})
        assert status == 400
        status, warm = _post(server, "/query", {"tuple": QUERY, "k": 10})
        assert status == 200
        status, cached = _post(server, "/query", {"tuple": QUERY, "k": 10})
        assert status == 200 and cached["cached"]

        status, body = _post(server, "/admin/ingest", {"triples": BURSTS[0]})
        assert status == 200
        assert body["ingested"] and body["applied"] == len(BURSTS[0])
        assert body["duplicates"] == 0
        assert body["delta_edges"] == len(BURSTS[0])
        assert not body["compacting"]

        # ...and fully queryable right after the ack, with the cache
        # invalidated: the same query recomputes on the union graph.
        status, fresh = _post(server, "/query", {"tuple": QUERY, "k": 10})
        assert status == 200 and not fresh["cached"]
        assert fresh["generation"] > warm["generation"]
        assert _answer_entities(fresh) == _expected_entities(
            _merged(figure1_graph, BURSTS[0])
        )
        status, body = _post(server, "/query", {"tuple": ["Ada Lovelace"]})
        assert status == 200

        status, health = _get(server, "/healthz")
        assert health["delta_edges"] == len(BURSTS[0])
        status, stats = _get(server, "/stats")
        assert stats["ingest"]["requests"] == 1
        assert stats["ingest"]["triples_applied"] == len(BURSTS[0])
        assert stats["ingest"]["delta_edges"] == len(BURSTS[0])

    def test_duplicate_triples_count_but_do_not_mutate(self, server):
        _post(server, "/admin/ingest", {"triples": BURSTS[0]})
        status, body = _post(
            server,
            "/admin/ingest",
            {"triples": BURSTS[0] + [["Jerry Yang", "founded", "Yahoo!"]]},
        )
        assert status == 200
        assert body["applied"] == 0
        assert body["duplicates"] == len(BURSTS[0]) + 1
        assert body["delta_edges"] == len(BURSTS[0])

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            {"triples": []},
            {"triples": "not-a-list"},
            {"triples": [["only", "two"]]},
            {"triples": [["a", "", "c"]]},
            {"triples": [["a", "b", 3]]},
        ],
    )
    def test_malformed_ingest_bodies_are_400(self, server, payload):
        status, body = _post(server, "/admin/ingest", payload)
        assert status == 400
        assert "error" in body

    def test_compact_writes_generation_and_swaps(self, server, figure1_graph):
        base = server.snapshot_path
        _post(server, "/admin/ingest", {"triples": BURSTS[0]})
        status, body = _post(server, "/admin/compact")
        assert status == 200
        assert body["compacted"]
        assert body["format"] == "v3"
        assert body["delta_edges"] == len(BURSTS[0])
        assert generation_number(body["snapshot"]) == 1
        assert generation_root(body["snapshot"]) == generation_root(base)

        # The server now serves the compacted generation: no delta, same
        # union answers, nothing stale in the cache.
        status, health = _get(server, "/healthz")
        assert health["snapshot"] == body["snapshot"]
        assert health["delta_edges"] == 0
        status, fresh = _post(server, "/query", {"tuple": QUERY, "k": 10})
        assert status == 200 and not fresh["cached"]
        assert _answer_entities(fresh) == _expected_entities(
            _merged(figure1_graph, BURSTS[0])
        )
        # The generation loads standalone, with the delta folded in.
        reloaded = GraphStore.load(body["snapshot"])
        assert reloaded.delta_triples == []
        assert reloaded.graph.num_edges == _merged(
            figure1_graph, BURSTS[0]
        ).num_edges

    def test_compact_without_snapshot_is_400(self, figure1_system):
        server = GQBEServer(
            figure1_system, port=0, batch_window_seconds=0.002
        ).start()
        try:
            status, body = _post(server, "/admin/compact")
            assert status == 400
            assert "snapshot" in body["error"]
        finally:
            server.stop()


# ----------------------------------------------------------------------
# async frontend
# ----------------------------------------------------------------------
class TestAsyncIngest:
    @pytest.fixture()
    def server(self, figure1_graph, tmp_path):
        path = _snapshot(figure1_graph, tmp_path)
        server = AsyncGQBEServer(
            GQBE.from_snapshot(path),
            snapshot_path=path,
            port=0,
            batch_window_seconds=0.002,
            cache_size=64,
        ).start()
        yield server
        server.stop()

    def test_ingest_visibility_and_metrics(self, server, figure1_graph):
        _post(server, "/query", {"tuple": QUERY, "k": 10})
        status, body = _post(
            server,
            "/admin/ingest",
            {"triples": BURSTS[0] + [["Jerry Yang", "founded", "Yahoo!"]]},
        )
        assert status == 200
        assert body["applied"] == len(BURSTS[0])
        assert body["duplicates"] == 1

        status, fresh = _post(server, "/query", {"tuple": QUERY, "k": 10})
        assert status == 200 and not fresh["cached"]
        assert _answer_entities(fresh) == _expected_entities(
            _merged(figure1_graph, BURSTS[0])
        )

        _status, text = _get(server, "/metrics")
        samples = parse_prometheus_text(text)
        assert samples[("gqbe_ingest_requests_total", ())] == 1
        assert samples[
            ("gqbe_ingest_triples_total", (("result", "applied"),))
        ] == len(BURSTS[0])
        assert (
            samples[("gqbe_ingest_triples_total", (("result", "duplicate"),))]
            == 1
        )
        assert samples[("gqbe_delta_edges", ())] == len(BURSTS[0])
        assert (
            samples[
                (
                    "gqbe_http_requests_total",
                    (("code", "200"), ("path", "/admin/ingest")),
                )
            ]
            == 1
        )

    def test_ingest_counts_against_admission_gate(self, figure1_graph, tmp_path):
        """An in-flight ingest holds a gate slot and shows on /metrics.

        Ingest shares the executor with queries, so it must consume an
        admission slot: with ``high_water=1`` a stalled ingest causes a
        concurrent ingest to be shed with 429, and the
        ``gqbe_ingest_inflight`` gauge reports it while it runs.
        """
        path = _snapshot(figure1_graph, tmp_path)
        server = AsyncGQBEServer(
            GQBE.from_snapshot(path), snapshot_path=path, port=0, high_water=1
        ).start()
        release = threading.Event()
        original = server.handle_ingest

        def slow_ingest(payload):
            release.wait(timeout=30)
            return original(payload)

        server.handle_ingest = slow_ingest
        result = {}

        def do_ingest():
            result["first"] = _post(server, "/admin/ingest", {"triples": BURSTS[0]})

        thread = threading.Thread(target=do_ingest)
        try:
            thread.start()
            deadline = time.monotonic() + 30
            while server._gate.depth < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server._gate.depth == 1

            _status, text = _get(server, "/metrics")
            samples = parse_prometheus_text(text)
            assert samples[("gqbe_ingest_inflight", ())] == 1
            assert samples[("gqbe_queue_depth", ())] == 1

            status, body = _post(server, "/admin/ingest", {"triples": BURSTS[1]})
            assert status == 429
            assert "capacity" in body["error"]
        finally:
            release.set()
            thread.join(timeout=30)
            server.handle_ingest = original

        try:
            status, body = result["first"]
            assert status == 200 and body["applied"] == len(BURSTS[0])
            _status, text = _get(server, "/metrics")
            samples = parse_prometheus_text(text)
            assert samples[("gqbe_ingest_inflight", ())] == 0
            assert samples[("gqbe_queue_depth", ())] == 0
            assert (
                samples[("gqbe_http_shed_total", (("reason", "queue_full"),))] == 1
            )
            # The freed slot admits the next ingest.
            status, body = _post(server, "/admin/ingest", {"triples": BURSTS[1]})
            assert status == 200 and body["applied"] == len(BURSTS[1])
        finally:
            server.stop()

    def test_ingest_requires_api_key_when_configured(
        self, figure1_graph, tmp_path
    ):
        path = _snapshot(figure1_graph, tmp_path)
        server = AsyncGQBEServer(
            GQBE.from_snapshot(path),
            snapshot_path=path,
            port=0,
            api_keys=["sesame"],
        ).start()
        try:
            status, body = _post(server, "/admin/ingest", {"triples": BURSTS[0]})
            assert status == 401
            status, body = _post(server, "/admin/compact")
            assert status == 401
            status, body = _post(
                server,
                "/admin/ingest",
                {"triples": BURSTS[0]},
                headers={"Authorization": "Bearer sesame"},
            )
            assert status == 200 and body["applied"] == len(BURSTS[0])
        finally:
            server.stop()

    def test_compact_threshold_triggers_background_fold(
        self, figure1_graph, tmp_path
    ):
        path = _snapshot(figure1_graph, tmp_path)
        threshold = len(BURSTS[0])
        server = AsyncGQBEServer(
            GQBE.from_snapshot(path),
            snapshot_path=path,
            port=0,
            compact_threshold=threshold,
        ).start()
        try:
            status, body = _post(server, "/admin/ingest", {"triples": BURSTS[0]})
            assert status == 200
            assert body["compacting"]
            deadline = time.monotonic() + 30
            target = generation_path(path, 1)
            while time.monotonic() < deadline:
                _status, health = _get(server, "/healthz")
                if health["snapshot"] == str(target):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("background compaction never swapped in gen1")
            assert health["delta_edges"] == 0
            _status, text = _get(server, "/metrics")
            samples = parse_prometheus_text(text)
            assert samples[("gqbe_compactions_total", ())] == 1
            status, fresh = _post(server, "/query", {"tuple": QUERY, "k": 10})
            assert status == 200
            assert _answer_entities(fresh) == _expected_entities(
                _merged(figure1_graph, BURSTS[0])
            )
        finally:
            server.stop()

    def test_threshold_config_field_validates(self):
        # The serving default comes from GQBEConfig.serve_compact_threshold
        # (wired through `gqbe serve --compact-threshold`).
        assert GQBEConfig().serve_compact_threshold is None
        assert GQBEConfig(serve_compact_threshold=500).serve_compact_threshold == 500
        with pytest.raises(EvaluationError, match="serve_compact_threshold"):
            GQBEConfig(serve_compact_threshold=0)
        with pytest.raises(ValueError, match="compact_threshold"):
            AsyncGQBEServer(
                GQBE(_merged(figure1_excerpt()), config=GQBEConfig(mqg_size=10)),
                port=0,
                compact_threshold=0,
            )


# ----------------------------------------------------------------------
# concurrency: queries racing ingest + compaction
# ----------------------------------------------------------------------
class TestConcurrentMutation:
    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_queries_always_see_a_consistent_stage(
        self, figure1_graph, tmp_path, frontend
    ):
        """Hammer /query while ingest bursts and a compaction land.

        Every successful response must equal one of the cumulative
        ground-truth stages — never a torn state, never a pre-mutation
        answer served from cache after the mutation's ack.
        """
        path = _snapshot(figure1_graph, tmp_path)
        stages = [
            _expected_entities(_merged(figure1_graph)),
            _expected_entities(_merged(figure1_graph, BURSTS[0])),
            _expected_entities(_merged(figure1_graph, BURSTS[0], BURSTS[1])),
        ]
        # The bursts must actually change the answers, or consistency
        # would be vacuous.
        assert stages[0] != stages[1] != stages[2]

        if frontend == "threaded":
            server = GQBEServer.from_snapshot(
                path, port=0, batch_window_seconds=0.001, cache_size=64
            ).start()
        else:
            server = AsyncGQBEServer(
                GQBE.from_snapshot(path),
                snapshot_path=path,
                port=0,
                batch_window_seconds=0.001,
                cache_size=64,
            ).start()
        failures: list[str] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    status, body = _post(
                        server, "/query", {"tuple": QUERY, "k": 10}
                    )
                except (ConnectionError, OSError):  # server stopping
                    return
                if status != 200:
                    failures.append(f"HTTP {status}: {body}")
                    return
                entities = _answer_entities(body)
                if entities not in stages:
                    failures.append(f"torn answer: {entities}")
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            for burst in BURSTS:
                status, body = _post(server, "/admin/ingest", {"triples": burst})
                assert status == 200 and body["applied"] == len(burst)
                time.sleep(0.05)
            status, body = _post(server, "/admin/compact")
            assert status == 200
            time.sleep(0.1)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            final_status, final = _post(server, "/query", {"tuple": QUERY, "k": 10})
            server.stop()
        assert not failures, failures[0]
        # After the dust settles the served answer is the fully merged
        # state, now read from the compacted generation.
        assert final_status == 200
        assert _answer_entities(final) == stages[-1]


# ----------------------------------------------------------------------
# crash safety
# ----------------------------------------------------------------------
class TestCrashSafety:
    def test_failed_compaction_leaves_server_live_and_no_wreckage(
        self, figure1_graph, tmp_path, monkeypatch
    ):
        path = _snapshot(figure1_graph, tmp_path)
        server = GQBEServer.from_snapshot(
            path, port=0, batch_window_seconds=0.002
        ).start()
        try:
            _post(server, "/admin/ingest", {"triples": BURSTS[0]})

            def explode(*args, **kwargs):
                raise SnapshotError("disk full mid-shard")

            monkeypatch.setattr(
                "repro.storage.snapshot.write_table_shard", explode
            )
            status, body = _post(server, "/admin/compact")
            assert status == 400
            # The half-written tmp dir was cleaned up; no generation
            # appeared.
            assert orphan_tmp_paths(path) == []
            assert [number for number, _ in list_generations(path)] == [0]

            # The server still answers from the live delta.
            monkeypatch.undo()
            status, fresh = _post(server, "/query", {"tuple": QUERY, "k": 10})
            assert status == 200
            assert _answer_entities(fresh) == _expected_entities(
                _merged(figure1_graph, BURSTS[0])
            )
            status, health = _get(server, "/healthz")
            assert health["delta_edges"] == len(BURSTS[0])

            # And a retry succeeds once the disk recovers.
            status, body = _post(server, "/admin/compact")
            assert status == 200 and generation_number(body["snapshot"]) == 1
        finally:
            server.stop()

    def test_restart_resolves_newest_valid_generation(
        self, figure1_graph, tmp_path
    ):
        """Simulated crash-restart: a torn generation and tmp wreckage
        must not stop the server family from loading the last good
        state."""
        path = _snapshot(figure1_graph, tmp_path)
        server = GQBEServer.from_snapshot(
            path, port=0, batch_window_seconds=0.002
        ).start()
        try:
            _post(server, "/admin/ingest", {"triples": BURSTS[0]})
            status, body = _post(server, "/admin/compact")
            assert status == 200
        finally:
            server.stop()
        # Crash leftovers: a manifest-less gen2 and a .tmp dir.
        generation_path(path, 2).mkdir()
        (tmp_path / (path.name + ".gen3.tmp")).mkdir()

        resolved = resolve_latest_generation(path)
        assert resolved == generation_path(path, 1)
        assert orphan_tmp_paths(path) == []
        restarted = GQBE.from_snapshot(resolved)
        result = restarted.query(tuple(QUERY), k=10)
        assert [tuple(a.entities) for a in result.answers] == _expected_entities(
            _merged(figure1_graph, BURSTS[0])
        )
