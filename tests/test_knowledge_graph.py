"""Unit tests for the directed labeled multigraph model."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph


class TestEdge:
    def test_other_returns_opposite_endpoint(self):
        edge = Edge("a", "r", "b")
        assert edge.other("a") == "b"
        assert edge.other("b") == "a"

    def test_other_raises_for_non_endpoint(self):
        with pytest.raises(GraphError):
            Edge("a", "r", "b").other("c")

    def test_other_on_self_loop(self):
        assert Edge("a", "r", "a").other("a") == "a"

    def test_touches(self):
        edge = Edge("a", "r", "b")
        assert edge.touches("a")
        assert edge.touches("b")
        assert not edge.touches("c")

    def test_endpoints_is_unordered(self):
        assert Edge("a", "r", "b").endpoints() == frozenset({"a", "b"})


class TestConstruction:
    def test_empty_graph(self):
        graph = KnowledgeGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.num_labels == 0

    def test_add_edge_creates_nodes(self):
        graph = KnowledgeGraph()
        graph.add_edge("a", "r", "b")
        assert graph.has_node("a")
        assert graph.has_node("b")
        assert graph.has_edge("a", "r", "b")

    def test_duplicate_edges_stored_once(self):
        graph = KnowledgeGraph()
        graph.add_edge("a", "r", "b")
        graph.add_edge("a", "r", "b")
        assert graph.num_edges == 1
        assert graph.label_count("r") == 1

    def test_parallel_edges_with_different_labels(self):
        graph = KnowledgeGraph()
        graph.add_edge("a", "r1", "b")
        graph.add_edge("a", "r2", "b")
        assert graph.num_edges == 2
        assert graph.num_labels == 2

    def test_constructor_accepts_tuples(self):
        graph = KnowledgeGraph([("a", "r", "b"), ("b", "s", "c")])
        assert graph.num_edges == 2

    def test_empty_label_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "", "b")

    def test_invalid_node_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(GraphError):
            graph.add_node("")

    def test_add_isolated_node(self):
        graph = KnowledgeGraph()
        graph.add_node("lonely")
        assert graph.has_node("lonely")
        assert graph.degree("lonely") == 0


class TestAdjacency:
    def test_out_and_in_edges(self, chain_graph: KnowledgeGraph):
        assert {e.object for e in chain_graph.out_edges("b")} == {"c", "x"}
        assert {e.subject for e in chain_graph.in_edges("b")} == {"a", "e"}

    def test_incident_edges_cover_both_directions(self, chain_graph: KnowledgeGraph):
        incident = chain_graph.incident_edges("b")
        assert len(incident) == 4

    def test_self_loop_counted_once_in_incident(self):
        graph = KnowledgeGraph([("a", "loop", "a"), ("a", "r", "b")])
        assert len(graph.incident_edges("a")) == 2

    def test_degree(self, chain_graph: KnowledgeGraph):
        assert chain_graph.degree("b") == 4
        assert chain_graph.out_degree("b") == 2
        assert chain_graph.in_degree("b") == 2

    def test_neighbors_ignore_direction(self, chain_graph: KnowledgeGraph):
        assert chain_graph.neighbors("b") == {"a", "c", "x", "e"}

    def test_unknown_node_has_empty_adjacency(self, chain_graph: KnowledgeGraph):
        assert chain_graph.out_edges("zzz") == []
        assert chain_graph.in_edges("zzz") == []
        assert chain_graph.neighbors("zzz") == set()

    def test_edges_with_label(self, chain_graph: KnowledgeGraph):
        assert len(chain_graph.edges_with_label("attr")) == 2
        assert chain_graph.edges_with_label("nope") == []


class TestSubgraphsAndConnectivity:
    def test_edge_subgraph(self, chain_graph: KnowledgeGraph):
        edges = [Edge("a", "r1", "b"), Edge("b", "r2", "c")]
        sub = chain_graph.edge_subgraph(edges)
        assert sub.num_edges == 2
        assert set(sub.nodes) == {"a", "b", "c"}

    def test_edge_subgraph_rejects_foreign_edges(self, chain_graph: KnowledgeGraph):
        with pytest.raises(GraphError):
            chain_graph.edge_subgraph([Edge("x", "nope", "y")])

    def test_node_subgraph(self, chain_graph: KnowledgeGraph):
        sub = chain_graph.node_subgraph(["a", "b", "c"])
        assert sub.num_edges == 2
        assert not sub.has_node("d")

    def test_weak_connectivity(self, chain_graph: KnowledgeGraph):
        assert chain_graph.is_weakly_connected()
        disconnected = KnowledgeGraph([("a", "r", "b"), ("c", "r", "d")])
        assert not disconnected.is_weakly_connected()

    def test_weakly_connected_components(self):
        graph = KnowledgeGraph([("a", "r", "b"), ("c", "r", "d")])
        components = graph.weakly_connected_components()
        assert len(components) == 2
        assert {frozenset(c) for c in components} == {
            frozenset({"a", "b"}),
            frozenset({"c", "d"}),
        }

    def test_undirected_distances(self, chain_graph: KnowledgeGraph):
        distances = chain_graph.undirected_distances("a")
        assert distances["a"] == 0
        assert distances["b"] == 1
        assert distances["d"] == 3

    def test_undirected_distances_with_cutoff(self, chain_graph: KnowledgeGraph):
        distances = chain_graph.undirected_distances("a", cutoff=1)
        assert "c" not in distances
        assert distances["b"] == 1

    def test_undirected_distances_unknown_source(self, chain_graph: KnowledgeGraph):
        with pytest.raises(GraphError):
            chain_graph.undirected_distances("zzz")


class TestDunders:
    def test_contains_node_and_edge(self, chain_graph: KnowledgeGraph):
        assert "a" in chain_graph
        assert Edge("a", "r1", "b") in chain_graph
        assert Edge("a", "zzz", "b") not in chain_graph
        assert 42 not in chain_graph

    def test_len_and_iter(self, chain_graph: KnowledgeGraph):
        assert len(chain_graph) == 6
        assert set(iter(chain_graph)) == set(chain_graph.edges)

    def test_equality_and_copy(self, chain_graph: KnowledgeGraph):
        duplicate = chain_graph.copy()
        assert duplicate == chain_graph
        duplicate.add_edge("new", "r", "node")
        assert duplicate != chain_graph

    def test_repr_mentions_sizes(self, chain_graph: KnowledgeGraph):
        text = repr(chain_graph)
        assert "nodes=7" in text
        assert "edges=6" in text
