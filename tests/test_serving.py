"""Serve-layer tests: HTTP frontend, micro-batcher, LRU answer cache.

Covers the serving acceptance criteria: concurrent JSON queries answered
from one warm snapshot load, request batching through
``GQBE.query_batch``, and — critically — that the LRU answer cache never
serves a stale answer after a new snapshot is loaded (generation guard).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.exceptions import UnknownEntityError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.serving.batching import QueryBatcher
from repro.serving.cache import AnswerCache
from repro.serving.server import GQBEServer
from repro.storage.snapshot import GraphStore


# ----------------------------------------------------------------------
# AnswerCache
# ----------------------------------------------------------------------
def test_cache_lru_eviction_order():
    cache = AnswerCache(capacity=2)
    generation = cache.generation
    cache.put("a", 1, generation)
    cache.put("b", 2, generation)
    assert cache.get("a") == 1  # refresh "a": now "b" is least recent
    cache.put("c", 3, generation)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_cache_generation_guard_drops_stale_puts():
    cache = AnswerCache(capacity=8)
    old_generation = cache.generation
    cache.invalidate()
    assert not cache.put("key", "stale", old_generation)
    assert cache.get("key") is None
    assert cache.put("key", "fresh", cache.generation)
    assert cache.get("key") == "fresh"
    assert cache.stale_puts == 1


def test_cache_zero_capacity_disables_caching():
    cache = AnswerCache(capacity=0)
    assert not cache.put("key", 1, cache.generation)
    assert cache.get("key") is None


# ----------------------------------------------------------------------
# QueryBatcher
# ----------------------------------------------------------------------
def test_batcher_groups_concurrent_submissions():
    calls = []
    started = threading.Barrier(5)

    def runner(tuples, k, k_prime):
        calls.append(list(tuples))
        return [("result", tuple(t), k, k_prime) for t in tuples]

    batcher = QueryBatcher(runner, window_seconds=0.2, max_batch=16)
    try:
        def submit(i):
            started.wait(timeout=5)
            return batcher.submit(("entity", str(i)), k=3)

        with ThreadPoolExecutor(max_workers=5) as pool:
            results = list(pool.map(submit, range(5)))
        assert sorted(r[1][1] for r in results) == [str(i) for i in range(5)]
        # All five arrived within the window: one batched runner call.
        assert len(calls) == 1 and len(calls[0]) == 5
        assert batcher.stats()["largest_batch"] == 5
    finally:
        batcher.close()


def test_batcher_groups_by_ranking_parameters():
    calls = []

    def runner(tuples, k, k_prime):
        calls.append((list(tuples), k, k_prime))
        return [("ok", k) for _ in tuples]

    batcher = QueryBatcher(runner, window_seconds=0.2, max_batch=16)
    try:
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(batcher.submit, ("e",), 5),
                pool.submit(batcher.submit, ("f",), 5),
                pool.submit(batcher.submit, ("g",), 9),
            ]
            results = [f.result(timeout=5) for f in futures]
        assert sorted(r[1] for r in results) == [5, 5, 9]
        ks = sorted(k for _, k, _ in calls)
        assert ks == [5, 9]  # one subgroup per (k, k_prime)
    finally:
        batcher.close()


def test_batcher_per_query_errors_do_not_poison_batchmates():
    def runner(tuples, k, k_prime):
        out = []
        for t in tuples:
            if t[0] == "bad":
                out.append(UnknownEntityError("bad"))
            else:
                out.append(("ok", t))
        return out

    batcher = QueryBatcher(runner, window_seconds=0.1, max_batch=8)
    try:
        with ThreadPoolExecutor(max_workers=2) as pool:
            good = pool.submit(batcher.submit, ("good",), 3)
            bad = pool.submit(batcher.submit, ("bad",), 3)
            assert good.result(timeout=5) == ("ok", ("good",))
            with pytest.raises(UnknownEntityError):
                bad.result(timeout=5)
    finally:
        batcher.close()


def test_batcher_close_rejects_new_submissions():
    batcher = QueryBatcher(lambda tuples, k, kp: [None for _ in tuples])
    batcher.close()
    with pytest.raises(RuntimeError):
        batcher.submit(("x",), 3)


# ----------------------------------------------------------------------
# GQBEServer over HTTP
# ----------------------------------------------------------------------
def _second_graph() -> KnowledgeGraph:
    """A graph where the Fig. 1 founder query has different answers."""
    graph = KnowledgeGraph()
    for founder, company in [
        ("Jerry Yang", "Yahoo!"),
        ("Ada Lovelace", "Analytical Engines Ltd"),
        ("Grace Hopper", "COBOL Systems"),
    ]:
        graph.add_edge(founder, "founded", company)
        graph.add_edge(founder, "profession", "Engineer")
        graph.add_edge(company, "industry", "Computing")
    return graph


@pytest.fixture(scope="module")
def figure1_server(figure1_graph):
    server = GQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        batch_window_seconds=0.002,
        cache_size=64,
    ).start()
    yield server
    server.stop()


def _post(server, path, payload):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _get(server, path):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_serve_answers_match_direct_query(figure1_server, figure1_system):
    status, body = _post(
        figure1_server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": 5}
    )
    assert status == 200
    direct = figure1_system.query(("Jerry Yang", "Yahoo!"), k=5)
    assert [tuple(a["entities"]) for a in body["answers"]] == [
        answer.entities for answer in direct.answers
    ]
    assert [a["score"] for a in body["answers"]] == [
        answer.score for answer in direct.answers
    ]
    assert body["cached"] is False


def test_serve_concurrent_requests_batch_and_agree(figure1_server, figure1_system):
    queries = [["Jerry Yang", "Yahoo!"], ["Sergey Brin", "Google"]] * 4
    with ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(
            pool.map(
                lambda q: _post(figure1_server, "/query", {"tuple": q, "k": 3}),
                queries,
            )
        )
    for (status, body), query in zip(responses, queries):
        assert status == 200
        direct = figure1_system.query(tuple(query), k=3)
        assert [tuple(a["entities"]) for a in body["answers"]] == [
            answer.entities for answer in direct.answers
        ]
    stats = figure1_server.stats()
    assert stats["requests_served"] >= len(queries)
    assert stats["batcher"]["queries_batched"] >= 1


def test_serve_cache_hit_on_repeat(figure1_server):
    payload = {"tuple": ["Steve Wozniak", "Apple Inc."], "k": 4}
    status1, first = _post(figure1_server, "/query", payload)
    status2, second = _post(figure1_server, "/query", payload)
    assert status1 == status2 == 200
    assert second["cached"] is True
    assert first["answers"] == second["answers"]


def test_serve_multi_tuple_query(figure1_server, figure1_system):
    payload = {
        "tuples": [["Jerry Yang", "Yahoo!"], ["Sergey Brin", "Google"]],
        "k": 4,
    }
    status, body = _post(figure1_server, "/query", payload)
    assert status == 200
    direct = figure1_system.query_multi(
        [("Jerry Yang", "Yahoo!"), ("Sergey Brin", "Google")], k=4
    )
    assert [tuple(a["entities"]) for a in body["answers"]] == [
        answer.entities for answer in direct.answers
    ]


def test_serve_rejects_bad_requests(figure1_server):
    assert _post(figure1_server, "/query", {"k": 3})[0] == 400
    assert _post(figure1_server, "/query", {"tuple": []})[0] == 400
    assert _post(figure1_server, "/query", {"tuple": ["x"], "k": 0})[0] == 400
    status, body = _post(figure1_server, "/query", {"tuple": ["NoSuchEntity"]})
    assert status == 400 and body["type"] == "UnknownEntityError"
    assert _get(figure1_server, "/nope")[0] == 404


def _raw_request(server, raw: bytes):
    """Send a hand-crafted HTTP request; returns (status, parsed body)."""
    import socket

    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        sock.sendall(raw)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    # Keep only the first response's JSON object.
    return status, json.loads(body.split(b"\r\n")[0] or body)


def test_serve_caps_oversized_request_bodies(figure1_server):
    """Satellite: an attacker-declared Content-Length cannot make the
    server allocate arbitrary memory — it is refused with 413 before a
    single body byte is read."""
    huge = figure1_server.max_body_bytes + 1
    raw = (
        b"POST /query HTTP/1.1\r\n"
        b"Host: test\r\nContent-Type: application/json\r\n"
        + f"Content-Length: {huge}\r\n\r\n".encode()
    )
    status, body = _raw_request(figure1_server, raw)
    assert status == 413
    assert "exceeds" in body["error"] and str(huge) in body["error"]
    # The server is still healthy afterwards.
    assert _get(figure1_server, "/healthz")[0] == 200


def test_serve_accepts_bodies_under_the_cap(figure1_graph, tmp_path):
    server = GQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        cache_size=0,
        max_body_bytes=256,
    ).start()
    try:
        status, _ = _post(
            server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": 2}
        )
        assert status == 200
        big_payload = {"tuple": ["Jerry Yang", "Yahoo!"], "pad": "x" * 512}
        status, body = _post(server, "/query", big_payload)
        assert status == 413
    finally:
        server.stop()


def test_serve_malformed_content_length_is_accurate_400(figure1_server):
    """Satellite: ``Content-Length: abc`` used to fall into the generic
    "request body is not valid JSON" 400; it must name the real problem."""
    raw = (
        b"POST /query HTTP/1.1\r\n"
        b"Host: test\r\nContent-Type: application/json\r\n"
        b"Content-Length: abc\r\n\r\n"
    )
    status, body = _raw_request(figure1_server, raw)
    assert status == 400
    assert "Content-Length" in body["error"]
    assert "JSON" not in body["error"]

    raw = (
        b"POST /query HTTP/1.1\r\n"
        b"Host: test\r\nContent-Type: application/json\r\n"
        b"Content-Length: -5\r\n\r\n"
    )
    status, body = _raw_request(figure1_server, raw)
    assert status == 400 and "Content-Length" in body["error"]


def test_serve_internal_errors_are_opaque(figure1_graph, monkeypatch):
    """Satellite: the last-resort 500 must not leak exception details to
    the client; the traceback is logged server-side and counted."""
    server = GQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)), port=0, cache_size=0
    ).start()
    try:
        def explode(payload):
            raise TypeError("secret internal detail: /etc/gqbe/snapshot.bin")

        monkeypatch.setattr(server, "handle_query", explode)
        status, body = _post(
            server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"]}
        )
        assert status == 500
        assert body == {"error": "internal server error"}
        stats = server.stats()
        assert stats["internal_errors"] == 1
        assert stats["request_errors"] >= 1
    finally:
        server.stop()


def test_serve_healthz(figure1_server, figure1_graph):
    status, body = _get(figure1_server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["graph"]["edges"] == figure1_graph.num_edges


def test_serve_cache_never_stale_after_snapshot_reload(figure1_graph, tmp_path):
    """The acceptance-critical staleness test.

    Query against snapshot A (answers cached), hot-swap snapshot B whose
    graph ranks different founders, re-issue the same query: the response
    must be B's answer, never A's cached one.
    """
    snap_a = tmp_path / "a.snap"
    snap_b = tmp_path / "b.snap"
    GraphStore.build(figure1_graph).save(snap_a)
    graph_b = _second_graph()
    GraphStore.build(graph_b).save(snap_b)

    server = GQBEServer.from_snapshot(
        snap_a, port=0, batch_window_seconds=0.001, cache_size=64
    ).start()
    try:
        payload = {"tuple": ["Jerry Yang", "Yahoo!"], "k": 5}
        _, before = _post(server, "/query", payload)
        _, before_again = _post(server, "/query", payload)
        assert before_again["cached"] is True

        status, reload_body = _post(
            server, "/admin/reload", {"snapshot": str(snap_b)}
        )
        assert status == 200 and reload_body["reloaded"] is True

        _, after = _post(server, "/query", payload)
        assert after["cached"] is False
        assert after["generation"] > before["generation"]
        expected = GQBE(graph_b).query(("Jerry Yang", "Yahoo!"), k=5)
        assert [tuple(a["entities"]) for a in after["answers"]] == [
            answer.entities for answer in expected.answers
        ]
        assert after["answers"] != before["answers"]
    finally:
        server.stop()


def test_serve_reload_failures_are_clean_400s(figure1_server, tmp_path):
    """Satellite: unreadable/corrupt snapshots surface as one typed
    SnapshotError through ``POST /admin/reload`` — a 400 naming the
    path, never a raw-traceback 500."""
    missing = tmp_path / "missing.snap"
    status, body = _post(
        figure1_server, "/admin/reload", {"snapshot": str(missing)}
    )
    assert status == 400
    assert body["type"] == "SnapshotError"
    assert "missing.snap" in body["error"]

    corrupt = tmp_path / "corrupt.snap"
    corrupt.write_bytes(b"NOTASNAP" + b"\x00" * 64)
    status, body = _post(
        figure1_server, "/admin/reload", {"snapshot": str(corrupt)}
    )
    assert status == 400 and body["type"] == "SnapshotError"

    corrupt_dir = tmp_path / "corrupt.snapdir"
    corrupt_dir.mkdir()
    (corrupt_dir / "MANIFEST.json").write_text("{not json")
    status, body = _post(
        figure1_server, "/admin/reload", {"snapshot": str(corrupt_dir)}
    )
    assert status == 400 and body["type"] == "SnapshotError"
    # The server kept serving from its original snapshot throughout.
    assert _get(figure1_server, "/healthz")[0] == 200


def test_serve_in_flight_result_cannot_poison_cache_after_reload(
    figure1_graph, tmp_path
):
    """A put computed against the old snapshot is dropped by the guard."""
    snap = tmp_path / "a.snap"
    GraphStore.build(figure1_graph).save(snap)
    server = GQBEServer.from_snapshot(snap, port=0, cache_size=64)
    try:
        generation_before = server._cache.generation
        status, body = server.handle_query(
            {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
        )
        assert status == 200
        # Simulate a reload landing between compute and a later (stale) put.
        server._cache.invalidate()
        assert not server._cache.put("whatever", body, generation_before)
        status, after = server.handle_query(
            {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
        )
        assert status == 200 and after["cached"] is False
    finally:
        server._batcher.close()


# ----------------------------------------------------------------------
# bench-serve load driver + CLI plumbing
# ----------------------------------------------------------------------
def test_bench_serve_load_driver(figure1_server):
    from repro.serving.loadgen import run_load

    report = run_load(
        figure1_server.host,
        figure1_server.port,
        [["Jerry Yang", "Yahoo!"], ["Sergey Brin", "Google"]],
        k=3,
        requests=12,
        concurrency=4,
    )
    assert report["completed"] == 12 and report["errors"] == 0
    assert report["throughput_rps"] > 0
    assert report["latency_ms"]["p95"] >= report["latency_ms"]["p50"] > 0


def test_cli_bench_serve_workload(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    exit_code = main(
        [
            "bench-serve",
            "--workload",
            "freebase",
            "--scale",
            "0.1",
            "--requests",
            "10",
            "--concurrency",
            "2",
            "--warmup",
            "2",
            "--port",
            "0",
            "--json",
            str(out),
        ]
    )
    assert exit_code == 0
    report = json.loads(out.read_text())
    assert report["completed"] == 10 and report["errors"] == 0
    assert "throughput" in capsys.readouterr().out


def test_cli_bench_serve_rejects_workload_plus_snapshot(capsys):
    from repro.cli import main

    assert main(["bench-serve", "--workload", "freebase", "--snapshot", "x.snap"]) == 2
    assert "not both" in capsys.readouterr().err


def test_cli_serve_parser_wiring():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--snapshot", "x.snap", "--port", "0", "--batch-window-ms", "2"]
    )
    assert args.snapshot == "x.snap"
    assert args.port == 0
    assert args.batch_window_ms == 2.0
    assert args.max_body_bytes is None  # server default (4 MiB) applies
    assert args.func.__name__ == "_cmd_serve"

    args = build_parser().parse_args(
        ["serve", "--snapshot", "x.snap", "--max-body-bytes", "1024"]
    )
    assert args.max_body_bytes == 1024

    args = build_parser().parse_args(
        ["bench-serve", "--workload", "freebase", "--snapshot-format", "v2"]
    )
    assert args.snapshot_format == "v2"
