"""Unit tests for the offline graph statistics (ief, participation degree)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.statistics import GraphStatistics


@pytest.fixture()
def stats_graph() -> KnowledgeGraph:
    """10 edges: 'common' appears 6 times, 'rare' twice, 'unique' once, 'solo' once."""
    graph = KnowledgeGraph()
    for i in range(6):
        graph.add_edge(f"p{i}", "common", "hub")
    graph.add_edge("p0", "rare", "x")
    graph.add_edge("p1", "rare", "y")
    graph.add_edge("p2", "unique", "z")
    graph.add_edge("a", "solo", "b")
    return graph


class TestInverseEdgeLabelFrequency:
    def test_exact_value(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        assert stats.ief("common") == pytest.approx(math.log(10 / 6))
        assert stats.ief("rare") == pytest.approx(math.log(10 / 2))
        assert stats.ief("unique") == pytest.approx(math.log(10 / 1))

    def test_rarer_labels_weigh_more(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        assert stats.ief("unique") > stats.ief("rare") > stats.ief("common")

    def test_accepts_edge_or_label(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        edge = Edge("p0", "rare", "x")
        assert stats.ief(edge) == stats.ief("rare")

    def test_unknown_label_treated_as_rarest(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        assert stats.ief("never_seen") == pytest.approx(math.log(10))

    def test_label_frequency(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        assert stats.label_frequency("common") == 6
        assert stats.label_frequency("never_seen") == 0


class TestParticipationDegree:
    def test_hub_object_increases_participation(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        # All six 'common' edges share the object 'hub'.
        assert stats.p(Edge("p0", "common", "hub")) == 6

    def test_isolated_edge_has_degree_one(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        assert stats.p(Edge("a", "solo", "b")) == 1

    def test_counts_same_subject_same_label(self):
        graph = KnowledgeGraph()
        graph.add_edge("company", "employment", "alice")
        graph.add_edge("company", "employment", "bob")
        graph.add_edge("company", "board_member", "carol")
        stats = GraphStatistics(graph)
        assert stats.p(Edge("company", "employment", "alice")) == 2
        assert stats.p(Edge("company", "board_member", "carol")) == 1

    def test_subject_and_object_sides_summed_without_double_count(self):
        graph = KnowledgeGraph()
        graph.add_edge("a", "r", "b")
        graph.add_edge("a", "r", "c")   # shares subject
        graph.add_edge("d", "r", "b")   # shares object
        stats = GraphStatistics(graph)
        # edges sharing subject a: 2; sharing object b: 2; (a,r,b) itself counted once
        assert stats.p(Edge("a", "r", "b")) == 3

    def test_unknown_edge_has_floor_of_one(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        assert stats.p(Edge("nope", "never_seen", "nada")) == 1


class TestBaseWeight:
    def test_weight_is_ief_over_p(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        edge = Edge("p0", "common", "hub")
        assert stats.base_edge_weight(edge) == pytest.approx(stats.ief(edge) / stats.p(edge))

    def test_board_member_beats_employment_locally(self):
        # The paper's motivating example: board_member edges are more
        # significant than employment edges at the same company.
        graph = KnowledgeGraph()
        for i in range(20):
            graph.add_edge("company", "employment", f"employee{i}")
        graph.add_edge("company", "board_member", "director")
        graph.add_edge("other", "board_member", "director2")
        stats = GraphStatistics(graph)
        employment = stats.base_edge_weight(Edge("company", "employment", "employee0"))
        board = stats.base_edge_weight(Edge("company", "board_member", "director"))
        assert board > employment

    def test_weights_for_returns_all_edges(self, stats_graph):
        stats = GraphStatistics(stats_graph)
        weights = stats.weights_for(stats_graph.edges)
        assert len(weights) == stats_graph.num_edges
        assert all(weight > 0 for weight in weights.values())

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            GraphStatistics(KnowledgeGraph())

    def test_total_edges_property(self, stats_graph):
        assert GraphStatistics(stats_graph).total_edges == 10
