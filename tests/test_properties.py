"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    average_precision,
    ndcg_at_k,
    pearson_correlation,
    precision_at_k,
)
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.statistics import GraphStatistics
from repro.graph.triples import format_triple, triples_from_strings
from repro.lattice.query_graph import LatticeSpace
from repro.discovery.mqg import MaximalQueryGraph
from repro.storage.join import evaluate_query_edges
from repro.storage.store import VerticalPartitionStore

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_node = st.sampled_from([f"n{i}" for i in range(8)])
_label = st.sampled_from(["r1", "r2", "r3", "r4"])
_triple = st.tuples(_node, _label, _node)
_triples = st.lists(_triple, min_size=1, max_size=30)

_slow = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(_triples)
@_slow
def test_graph_edge_and_label_counts_consistent(triples):
    graph = KnowledgeGraph(triples)
    assert graph.num_edges == len(set(Edge(*t) for t in triples))
    assert sum(graph.label_counts().values()) == graph.num_edges
    # Sum of out-degrees equals number of edges.
    assert sum(graph.out_degree(node) for node in graph.nodes) == graph.num_edges


@given(_triples)
@_slow
def test_graph_components_partition_nodes(triples):
    graph = KnowledgeGraph(triples)
    components = graph.weakly_connected_components()
    seen = [node for component in components for node in component]
    assert sorted(seen) == sorted(graph.nodes)


@given(_triples)
@_slow
def test_triple_roundtrip_through_both_formats(triples):
    edges = sorted(set(Edge(*t) for t in triples))
    for fmt in ("tsv", "nt"):
        text = "\n".join(format_triple(edge, fmt=fmt) for edge in edges)
        assert triples_from_strings(text, fmt=fmt) == edges


@given(_triples)
@_slow
def test_statistics_invariants(triples):
    graph = KnowledgeGraph(triples)
    stats = GraphStatistics(graph)
    for edge in graph.edges:
        assert stats.ief(edge) >= 0.0
        assert 1 <= stats.p(edge) <= graph.num_edges
        assert stats.base_edge_weight(edge) >= 0.0


@given(_triples, st.integers(min_value=1, max_value=3))
@_slow
def test_neighborhood_is_monotone_in_d(triples, d):
    graph = KnowledgeGraph(triples)
    entity = next(iter(graph.nodes))
    smaller = neighborhood_graph(graph, (entity,), d=d)
    larger = neighborhood_graph(graph, (entity,), d=d + 1)
    assert set(smaller.graph.nodes) <= set(larger.graph.nodes)
    assert set(smaller.graph.edges) <= set(larger.graph.edges)
    assert all(dist <= d for dist in smaller.distances.values())


@given(_triples)
@_slow
def test_store_row_counts_match_graph(triples):
    graph = KnowledgeGraph(triples)
    store = VerticalPartitionStore(graph)
    assert store.num_rows == graph.num_edges
    for label in graph.labels:
        assert store.cardinality(label) == graph.label_count(label)


@given(_triples)
@_slow
def test_single_edge_join_matches_label_table(triples):
    graph = KnowledgeGraph(triples)
    store = VerticalPartitionStore(graph)
    label = next(iter(graph.labels))
    relation = evaluate_query_edges(store, [Edge("u", label, "v")], injective=False)
    expected = {(e.subject, e.object) for e in graph.edges if e.label == label}
    decoded = {store.vocabulary.decode_row(row) for row in relation.rows}
    assert decoded == expected


@given(_triples)
@_slow
def test_lattice_structure_score_monotone(triples):
    graph = KnowledgeGraph(triples)
    entity = next(iter(graph.nodes))
    incident = graph.incident_edges(entity)
    if not incident:
        return
    weights = {edge: 1.0 + i * 0.1 for i, edge in enumerate(sorted(graph.edges))}
    mqg_graph = KnowledgeGraph()
    for edge in graph.edges:
        mqg_graph.add_edge(*edge)
    mqg = MaximalQueryGraph(
        graph=mqg_graph,
        query_tuple=(entity,),
        edge_weights=weights,
        core_edges=frozenset(),
    )
    space = LatticeSpace(mqg)
    # Property 2: a supergraph always has a strictly larger structure score.
    full = space.full_mask
    for i in range(space.num_edges):
        child = full & ~(1 << i)
        if child:
            assert space.weight_of_mask(child) < space.weight_of_mask(full)


# ----------------------------------------------------------------------
# metric properties
# ----------------------------------------------------------------------
_tuples = st.lists(
    st.tuples(st.sampled_from([f"e{i}" for i in range(12)])), min_size=1, max_size=12, unique=True
)


@given(_tuples, _tuples, st.integers(min_value=1, max_value=12))
@_slow
def test_metric_ranges(results, truth, k):
    p = precision_at_k(results, truth, k)
    ap = average_precision(results, truth, k)
    ndcg = ndcg_at_k(results, truth, k)
    assert 0.0 <= p <= 1.0
    assert 0.0 <= ap <= 1.0 + 1e-9
    assert 0.0 <= ndcg <= 1.0 + 1e-9


@given(_tuples, st.integers(min_value=1, max_value=12))
@_slow
def test_perfect_results_have_perfect_precision(truth, k):
    k = min(k, len(truth))
    assert precision_at_k(truth, truth, k) == 1.0
    assert ndcg_at_k(truth, truth, k) in (0.0, 1.0) or ndcg_at_k(truth, truth, k) >= 0.99


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=20))
@_slow
def test_pearson_correlation_symmetric_and_bounded(xs):
    ys = [x * 2 + 1 for x in xs]
    pcc = pearson_correlation(xs, ys)
    if pcc is not None:
        assert -1.0 - 1e-9 <= pcc <= 1.0 + 1e-9
        reverse = pearson_correlation(ys, xs)
        assert reverse is not None
        assert abs(pcc - reverse) < 1e-9
