"""The documentation must stay executable and internally linked.

Runs the same checker as CI's docs job (``tools/check_docs.py``): every
relative link in README.md and docs/*.md must resolve, every ```python
block must execute, and the README quickstart's ``gqbe`` console
commands must run as written (including an ephemeral ``gqbe serve`` +
``curl`` round-trip).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_readme_and_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "configuration.md").is_file()
    assert (REPO_ROOT / "docs" / "snapshot-format.md").is_file()


def test_docs_links_resolve():
    checker = _load_checker()
    problems = []
    for path in [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]:
        problems.extend(checker.check_links(path, path.read_text()))
    assert problems == []


def test_docs_code_blocks_execute():
    """The full checker: code blocks run, quickstart commands work."""
    checker = _load_checker()
    assert checker.main() == 0
