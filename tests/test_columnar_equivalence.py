"""Equivalence of the columnar numpy engine and the tuple-row engine.

The columnar layout (``ColumnarEdgeTable``/``ColumnarRelation`` plus the
vectorized join paths) must be a pure performance change: a store built
with ``columnar=False`` runs the original tuple-row join code over the
same interned ids, so every query must return byte-identical ranked
answers — and do identical work — on both paths.  Together with
``test_interning_equivalence.py`` (interned vs. string ids) this pins the
whole engine triangle: columnar-int ≡ rows-int ≡ rows-string.
"""

from __future__ import annotations

import pytest

import repro.storage.join as join_module
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.storage.join import (
    ColumnarRelation,
    evaluate_query_edges,
    extend_with_edge,
)
from repro.storage.store import VerticalPartitionStore


@pytest.fixture(params=["adaptive", "vectorized", "scalar"])
def tail_mode(request, monkeypatch):
    """Run equivalence checks under every engine dispatch regime.

    ``adaptive`` is the shipped behavior (scalar tail below the size
    threshold); ``vectorized`` forces every columnar operation through
    the numpy kernels; ``scalar`` forces every operation through the
    python tails.  All three must agree with the tuple-row engine.
    """
    if request.param == "vectorized":
        monkeypatch.setattr(join_module, "_SCALAR_TAIL_ROWS", -1)
    elif request.param == "scalar":
        monkeypatch.setattr(join_module, "_SCALAR_TAIL_ROWS", 1 << 60)
    return request.param


def _engine_pair(graph) -> tuple[GQBE, GQBE]:
    columnar_config = GQBEConfig(mqg_size=8, k_prime=25, max_join_rows=100_000)
    rows_config = GQBEConfig(
        mqg_size=8, k_prime=25, max_join_rows=100_000, columnar=False
    )
    return GQBE(graph, config=columnar_config), GQBE(graph, config=rows_config)


def _store_pair(graph) -> tuple[VerticalPartitionStore, VerticalPartitionStore]:
    return (
        VerticalPartitionStore(graph),
        VerticalPartitionStore(graph, columnar=False),
    )


def _assert_identical_results(columnar_result, rows_result):
    assert [a.entities for a in columnar_result.answers] == [
        a.entities for a in rows_result.answers
    ]
    for left, right in zip(columnar_result.answers, rows_result.answers):
        assert left.rank == right.rank
        assert left.score == right.score
        assert left.structure_score == right.structure_score
        assert left.content_score == right.content_score


class TestColumnarJoinEquivalence:
    """Join-level parity: same rows, same order, same overflow behavior."""

    def _assert_same_relation(self, columnar, rows):
        assert isinstance(columnar, ColumnarRelation)
        assert columnar.variables == rows.variables
        assert columnar.to_rows() == rows.to_rows()

    def test_single_edge_and_projection(self, figure1_graph, tail_mode):
        columnar_store, rows_store = _store_pair(figure1_graph)
        edges = [Edge("q_person", "founded", "q_company")]
        self._assert_same_relation(
            evaluate_query_edges(columnar_store, edges),
            evaluate_query_edges(rows_store, edges),
        )

    def test_multi_edge_query_with_cycle(self, figure1_graph, tail_mode):
        columnar_store, rows_store = _store_pair(figure1_graph)
        edges = [
            Edge("person", "founded", "company"),
            Edge("person", "places_lived", "city"),
            Edge("company", "headquartered_in", "hq"),
            Edge("city", "in_state", "state"),
            Edge("hq", "in_state", "state"),
        ]
        self._assert_same_relation(
            evaluate_query_edges(columnar_store, edges),
            evaluate_query_edges(rows_store, edges),
        )

    def test_extension_from_child_relation(self, figure1_graph, tail_mode):
        columnar_store, rows_store = _store_pair(figure1_graph)
        base_edge = [Edge("person", "founded", "company")]
        extension = Edge("company", "headquartered_in", "city")
        self._assert_same_relation(
            extend_with_edge(
                columnar_store,
                evaluate_query_edges(columnar_store, base_edge),
                extension,
            ),
            extend_with_edge(
                rows_store, evaluate_query_edges(rows_store, base_edge), extension
            ),
        )

    def test_object_side_probe(self, figure1_graph, tail_mode):
        columnar_store, rows_store = _store_pair(figure1_graph)
        base_edge = [Edge("company", "headquartered_in", "city")]
        extension = Edge("person", "founded", "company")  # binds the object
        self._assert_same_relation(
            extend_with_edge(
                columnar_store,
                evaluate_query_edges(columnar_store, base_edge),
                extension,
            ),
            extend_with_edge(
                rows_store, evaluate_query_edges(rows_store, base_edge), extension
            ),
        )

    @pytest.mark.parametrize("injective", [True, False])
    def test_self_loops_and_injectivity(self, injective, tail_mode):
        graph = KnowledgeGraph(
            [("a", "likes", "a"), ("a", "likes", "b"), ("b", "likes", "a")]
        )
        columnar_store, rows_store = _store_pair(graph)
        for edges in ([Edge("x", "likes", "y")], [Edge("x", "likes", "x")]):
            self._assert_same_relation(
                evaluate_query_edges(columnar_store, edges, injective=injective),
                evaluate_query_edges(rows_store, edges, injective=injective),
            )

    def test_unknown_label_yields_empty_with_schema(self, figure1_graph):
        columnar_store, rows_store = _store_pair(figure1_graph)
        edges = [
            Edge("person", "founded", "company"),
            Edge("person", "never_seen_label", "thing"),
        ]
        columnar = evaluate_query_edges(columnar_store, edges)
        rows = evaluate_query_edges(rows_store, edges)
        assert columnar.is_empty() and rows.is_empty()
        assert set(columnar.variables) == set(rows.variables)

    @pytest.mark.parametrize("max_rows", [1, 2, 4, 1000])
    def test_max_rows_raises_in_lockstep(self, figure1_graph, max_rows, tail_mode):
        columnar_store, rows_store = _store_pair(figure1_graph)
        edges = [
            Edge("person", "nationality", "country"),
            Edge("person", "founded", "company"),
        ]
        outcomes = []
        for store in (columnar_store, rows_store):
            try:
                relation = evaluate_query_edges(store, edges, max_rows=max_rows)
                outcomes.append(sorted(relation.to_rows()))
            except LatticeError:
                outcomes.append("overflow")
        assert outcomes[0] == outcomes[1]

    def test_disconnected_extension_rejected(self, figure1_graph):
        columnar_store, _ = _store_pair(figure1_graph)
        base = evaluate_query_edges(
            columnar_store, [Edge("person", "founded", "company")]
        )
        with pytest.raises(LatticeError):
            extend_with_edge(columnar_store, base, Edge("city", "in_state", "state"))


class TestColumnarEngineMatchesRowsEngine:
    @pytest.mark.parametrize("seed", [1, 5, 9, 13, 42])
    def test_random_synthetic_graphs(self, seed, tail_mode):
        """Property: on random synthetic graphs, both engines agree exactly
        on the ranked answers *and* on the work done to produce them."""
        dataset = FreebaseLikeGenerator(seed=seed, scale=0.2).generate()
        columnar, rows = _engine_pair(dataset.graph)
        assert columnar.store.is_columnar
        assert not rows.store.is_columnar
        for table_name in dataset.table_names()[:3]:
            query_tuple = tuple(dataset.table(table_name)[0])
            columnar_result = columnar.query(query_tuple, k=10)
            rows_result = rows.query(query_tuple, k=10)
            _assert_identical_results(columnar_result, rows_result)
            assert (
                columnar_result.statistics.nodes_evaluated
                == rows_result.statistics.nodes_evaluated
            )
            assert (
                columnar_result.statistics.null_nodes
                == rows_result.statistics.null_nodes
            )
            assert (
                columnar_result.statistics.nodes_skipped
                == rows_result.statistics.nodes_skipped
            )

    def test_multi_tuple_queries_agree(self):
        dataset = FreebaseLikeGenerator(seed=3, scale=0.2).generate()
        columnar, rows = _engine_pair(dataset.graph)
        table = dataset.table(dataset.table_names()[0])
        tuples = [tuple(table[0]), tuple(table[1])]
        _assert_identical_results(
            columnar.query_multi(tuples, k=10), rows.query_multi(tuples, k=10)
        )

    def test_tight_join_caps_agree(self):
        """max_rows small enough to skip nodes: the skip bookkeeping must
        stay in lockstep too."""
        dataset = FreebaseLikeGenerator(seed=11, scale=0.2).generate()
        config = {"mqg_size": 8, "k_prime": 20, "max_join_rows": 40}
        columnar = GQBE(dataset.graph, config=GQBEConfig(**config))
        rows = GQBE(dataset.graph, config=GQBEConfig(columnar=False, **config))
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        columnar_result = columnar.query(query_tuple, k=10)
        rows_result = rows.query(query_tuple, k=10)
        _assert_identical_results(columnar_result, rows_result)
        assert (
            columnar_result.statistics.nodes_skipped
            == rows_result.statistics.nodes_skipped
        )
