"""Tests for the accuracy metrics and the simulated user study."""

from __future__ import annotations

import math

import pytest

from repro.evaluation.metrics import (
    average_precision,
    correlation_strength,
    dcg_at_k,
    mean_average_precision,
    ndcg_at_k,
    pearson_correlation,
    precision_at_k,
)
from repro.evaluation.user_study import SimulatedWorkerPool, pcc_for_ranking

RESULTS = [("a",), ("b",), ("c",), ("d",)]
TRUTH = [("a",), ("c",), ("x",)]


class TestPrecisionAtK:
    def test_basic(self):
        assert precision_at_k(RESULTS, TRUTH, 2) == 0.5
        assert precision_at_k(RESULTS, TRUTH, 4) == 0.5

    def test_perfect_and_zero(self):
        assert precision_at_k([("a",), ("c",)], TRUTH, 2) == 1.0
        assert precision_at_k([("z",), ("y",)], TRUTH, 2) == 0.0

    def test_fewer_results_than_k_penalized(self):
        assert precision_at_k([("a",)], TRUTH, 10) == pytest.approx(0.1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(RESULTS, TRUTH, 0)


class TestAveragePrecision:
    def test_paper_normalization_by_ground_truth_size(self):
        # Hits at ranks 1 and 3: (1/1 + 2/3) / |truth| = (1 + 0.667) / 3
        expected = (1.0 + 2.0 / 3.0) / 3
        assert average_precision(RESULTS, TRUTH, 4) == pytest.approx(expected)

    def test_empty_ground_truth_gives_zero(self):
        assert average_precision(RESULTS, [], 4) == 0.0

    def test_map_is_mean(self):
        runs = [(RESULTS, TRUTH), ([("z",)], TRUTH)]
        expected = (average_precision(RESULTS, TRUTH, 4) + 0.0) / 2
        assert mean_average_precision(runs, 4) == pytest.approx(expected)
        assert mean_average_precision([], 4) == 0.0


class TestNDCG:
    def test_dcg_formula(self):
        assert dcg_at_k([1, 1, 0], 3) == pytest.approx(1 + 1 / math.log2(2))
        assert dcg_at_k([], 3) == 0.0

    def test_perfect_ranking_scores_one(self):
        assert ndcg_at_k([("a",), ("c",), ("z",)], TRUTH, 3) == pytest.approx(1.0)

    def test_bad_ranking_below_one(self):
        value = ndcg_at_k([("z",), ("y",), ("a",)], TRUTH, 3)
        assert 0.0 < value < 1.0

    def test_no_relevant_results(self):
        assert ndcg_at_k([("z",), ("y",)], TRUTH, 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ndcg_at_k(RESULTS, TRUTH, 0)


class TestPearson:
    def test_perfect_positive_and_negative(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_undefined_for_constant_lists(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) is None
        assert pearson_correlation([], []) is None

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_strength_bands(self):
        assert correlation_strength(0.8) == "strong"
        assert correlation_strength(0.4) == "medium"
        assert correlation_strength(0.2) == "small"
        assert correlation_strength(0.05) == "none"
        assert correlation_strength(None) == "undefined"


class TestSimulatedUserStudy:
    def test_judgments_shape(self):
        pool = SimulatedWorkerPool(workers_per_pair=10, noise=0.1, seed=1)
        answers = [(f"answer{i}",) for i in range(10)]
        judgments = pool.judge_pairs(answers, [("answer0",), ("answer1",)], num_pairs=20)
        assert len(judgments) == 20
        for judgment in judgments:
            assert judgment.votes_for_first + judgment.votes_for_second == 10
            assert judgment.first_rank != judgment.second_rank

    def test_too_few_answers_gives_no_judgments(self):
        pool = SimulatedWorkerPool()
        assert pool.judge_pairs([("only",)], [], num_pairs=10) == []
        assert pcc_for_ranking([("only",)], []) is None

    def test_good_ranking_has_positive_pcc(self):
        # Ranking that puts all ground-truth answers first should correlate
        # positively with (low-noise) workers.
        truth = [(f"good{i}",) for i in range(5)]
        answers = truth + [(f"bad{i}",) for i in range(5)]
        pool = SimulatedWorkerPool(noise=0.05, seed=3)
        pcc = pcc_for_ranking(answers, truth, pool=pool, num_pairs=60)
        assert pcc is not None
        assert pcc > 0.3

    def test_inverted_ranking_has_lower_pcc_than_good_ranking(self):
        truth = [(f"good{i}",) for i in range(5)]
        good = truth + [(f"bad{i}",) for i in range(5)]
        bad = list(reversed(good))
        good_pcc = pcc_for_ranking(good, truth, pool=SimulatedWorkerPool(noise=0.05, seed=3))
        bad_pcc = pcc_for_ranking(bad, truth, pool=SimulatedWorkerPool(noise=0.05, seed=3))
        assert good_pcc is not None and bad_pcc is not None
        assert good_pcc > bad_pcc

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            SimulatedWorkerPool(noise=1.5)
