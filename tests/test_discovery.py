"""Unit tests for query graph discovery: weights, reduction, MQG, merging."""

from __future__ import annotations

import pytest

from repro.discovery.merge import merge_maximal_query_graphs, virtual_entity
from repro.discovery.mqg import (
    _component_containing,
    _trim_component,
    discover_maximal_query_graph,
    select_mqg_edges,
)
from repro.discovery.reduction import reduce_neighborhood_graph
from repro.discovery.weights import discovery_edge_weights, edge_depths, mqg_edge_weights
from repro.exceptions import DisconnectedQueryError, DiscoveryError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.statistics import GraphStatistics


@pytest.fixture()
def figure1_neighborhood(figure1_graph):
    return neighborhood_graph(figure1_graph, ("Jerry Yang", "Yahoo!"), d=2)


class TestEdgeDepths:
    def test_edges_on_query_entities_have_depth_one(self, figure1_graph):
        depths = edge_depths(figure1_graph, ("Jerry Yang", "Yahoo!"))
        assert depths[Edge("Jerry Yang", "founded", "Yahoo!")] == 1
        assert depths[Edge("Jerry Yang", "education", "Stanford")] == 1

    def test_depth_grows_with_distance(self, figure1_graph):
        depths = edge_depths(figure1_graph, ("Jerry Yang",))
        founded = depths[Edge("Jerry Yang", "founded", "Yahoo!")]
        hq = depths[Edge("Yahoo!", "headquartered_in", "Sunnyvale")]
        in_state = depths[Edge("Sunnyvale", "in_state", "California")]
        assert founded < hq < in_state

    def test_depth_adjusted_weights_decrease_with_depth(self, figure1_graph, figure1_stats):
        weights = mqg_edge_weights(figure1_stats, figure1_graph, ("Jerry Yang",))
        base = discovery_edge_weights(figure1_stats, figure1_graph.edges)
        far_edge = Edge("Sunnyvale", "in_state", "California")
        near_edge = Edge("Jerry Yang", "founded", "Yahoo!")
        assert weights[near_edge] == pytest.approx(base[near_edge])
        assert weights[far_edge] < base[far_edge]


class TestReduction:
    def test_reduction_keeps_query_entities_connected(self, figure1_neighborhood):
        reduced = reduce_neighborhood_graph(figure1_neighborhood)
        assert reduced.graph.is_weakly_connected()
        assert reduced.graph.has_node("Jerry Yang")
        assert reduced.graph.has_node("Yahoo!")

    def test_reduction_never_adds_edges(self, figure1_neighborhood):
        reduced = reduce_neighborhood_graph(figure1_neighborhood)
        assert reduced.num_edges <= figure1_neighborhood.num_edges
        for edge in reduced.graph.edges:
            assert figure1_neighborhood.graph.has_edge(*edge)

    def test_unimportant_sibling_edges_removed(self):
        # Many 'education' edges into the same university; only the one from
        # the query entity is important, the others are unimportant copies.
        graph = KnowledgeGraph()
        graph.add_edge("q1", "founded", "q2")
        graph.add_edge("q1", "education", "Uni")
        for i in range(5):
            graph.add_edge(f"other{i}", "education", "Uni")
        neighborhood = neighborhood_graph(graph, ("q1", "q2"), d=2)
        reduced = reduce_neighborhood_graph(neighborhood)
        assert reduced.graph.has_edge("q1", "education", "Uni")
        assert not reduced.graph.has_edge("other0", "education", "Uni")

    def test_important_edges_on_inter_entity_paths_survive(self, figure1_neighborhood):
        reduced = reduce_neighborhood_graph(figure1_neighborhood)
        assert reduced.graph.has_edge("Jerry Yang", "founded", "Yahoo!")


class TestMQGDiscovery:
    def test_mqg_contains_query_entities_and_is_connected(
        self, figure1_neighborhood, figure1_stats
    ):
        mqg = discover_maximal_query_graph(figure1_neighborhood, figure1_stats, r=10)
        assert mqg.graph.has_node("Jerry Yang")
        assert mqg.graph.has_node("Yahoo!")
        assert mqg.graph.is_weakly_connected()

    def test_mqg_respects_size_target_roughly(self, figure1_neighborhood, figure1_stats):
        mqg = discover_maximal_query_graph(figure1_neighborhood, figure1_stats, r=6)
        # The greedy aims at r edges overall; allow some slack above it
        # because connectivity of the core cannot be sacrificed.
        assert mqg.num_edges <= figure1_neighborhood.num_edges
        assert mqg.num_edges >= 2

    def test_mqg_is_subgraph_of_neighborhood(self, figure1_neighborhood, figure1_stats):
        mqg = discover_maximal_query_graph(figure1_neighborhood, figure1_stats, r=10)
        for edge in mqg.graph.edges:
            assert figure1_neighborhood.graph.has_edge(*edge)

    def test_weights_and_core_populated(self, figure1_neighborhood, figure1_stats):
        mqg = discover_maximal_query_graph(figure1_neighborhood, figure1_stats, r=10)
        assert set(mqg.edge_weights) == set(mqg.graph.edges)
        assert all(weight > 0 for weight in mqg.edge_weights.values())
        assert mqg.core_edges  # two-entity query: core connects them
        assert all(edge in mqg.edge_weights for edge in mqg.core_edges)

    def test_single_entity_mqg(self, figure1_graph, figure1_stats):
        neighborhood = neighborhood_graph(figure1_graph, ("Stanford",), d=2)
        mqg = discover_maximal_query_graph(neighborhood, figure1_stats, r=8)
        assert mqg.graph.has_node("Stanford")
        assert mqg.num_edges >= 1

    def test_disconnected_entities_raise(self, figure1_stats):
        graph = KnowledgeGraph([("a", "r", "b"), ("c", "r", "d")])
        stats = GraphStatistics(graph)
        neighborhood = neighborhood_graph(graph, ("a", "c"), d=2)
        with pytest.raises((DisconnectedQueryError, DiscoveryError)):
            discover_maximal_query_graph(neighborhood, stats, r=5)

    def test_select_mqg_edges_empty_tuple_raises(self, figure1_graph):
        with pytest.raises(DiscoveryError):
            select_mqg_edges(figure1_graph, (), weights={}, r=5)

    def test_total_weight_and_incident_count(self, figure1_neighborhood, figure1_stats):
        mqg = discover_maximal_query_graph(figure1_neighborhood, figure1_stats, r=10)
        assert mqg.total_weight() == pytest.approx(sum(mqg.edge_weights.values()))
        assert mqg.incident_count("Jerry Yang") >= 1


def _trim_component_reference(component, required, weights, target):
    """The original quadratic greedy — kept as the executable spec for
    :func:`_trim_component`'s union-find reimplementation."""
    if len(component) <= target:
        return component
    current = set(component)
    removable = sorted(current, key=lambda e: (weights.get(e, 0.0), e))
    for edge in removable:
        if len(current) <= target:
            break
        if edge not in current:
            continue
        candidate = current - {edge}
        trimmed, exists = _component_containing(sorted(candidate), required)
        if exists:
            current = trimmed
    return current


class TestTrimComponent:
    @staticmethod
    def _random_case(seed: int):
        """A random connected multigraph, required nodes and tie-heavy weights."""
        import random

        rng = random.Random(seed)
        n = rng.randint(4, 18)
        nodes = [f"v{i}" for i in range(n)]
        edges = set()
        # Random spanning tree keeps everything connected, then extra
        # edges create the cycles/fragments trimming feeds on.
        for i in range(1, n):
            edges.add(Edge(nodes[rng.randrange(i)], f"r{rng.randrange(3)}", nodes[i]))
        for _ in range(rng.randint(0, 2 * n)):
            a, b = rng.choice(nodes), rng.choice(nodes)
            edges.add(Edge(a, f"r{rng.randrange(3)}", b))
        # Coarse weights force plenty of sort ties.
        weights = {edge: rng.randrange(5) / 2.0 for edge in edges}
        required = set(rng.sample(nodes, rng.randint(1, min(3, n))))
        component, exists = _component_containing(sorted(edges), required)
        assert exists
        target = rng.randint(1, max(1, len(component)))
        return component, required, weights, target

    @pytest.mark.parametrize("seed", range(40))
    def test_matches_quadratic_reference(self, seed):
        component, required, weights, target = self._random_case(seed)
        fast = _trim_component(set(component), required, weights, target)
        reference = _trim_component_reference(set(component), required, weights, target)
        assert fast == reference

    def test_untrimmed_when_small_enough(self):
        edges = {Edge("a", "r", "b"), Edge("b", "r", "c")}
        assert _trim_component(set(edges), {"a"}, {}, 5) == edges

    def test_keeps_required_bridge(self):
        # a-b is the only connection between the required nodes and has the
        # lowest weight: trimming must keep it no matter the target.
        bridge = Edge("a", "bridge", "b")
        edges = {
            bridge,
            Edge("b", "r", "c"),
            Edge("c", "r", "d"),
            Edge("d", "r", "b"),
        }
        weights = {edge: 1.0 for edge in edges}
        weights[bridge] = 0.0
        trimmed = _trim_component(set(edges), {"a", "b"}, weights, 1)
        assert bridge in trimmed


class TestMerging:
    def _mqg_for(self, system, query_tuple):
        return system.discover_query_graph(query_tuple)

    def test_virtual_entities_replace_query_entities(self, figure1_system):
        mqg1 = self._mqg_for(figure1_system, ("Jerry Yang", "Yahoo!"))
        mqg2 = self._mqg_for(figure1_system, ("Steve Wozniak", "Apple Inc."))
        merged = merge_maximal_query_graphs([mqg1, mqg2], r=10)
        assert merged.query_tuple == (virtual_entity(0), virtual_entity(1))
        assert merged.graph.has_node(virtual_entity(0))
        assert not merged.graph.has_node("Jerry Yang")

    def test_shared_edges_get_boosted_weight(self, figure1_system):
        mqg1 = self._mqg_for(figure1_system, ("Jerry Yang", "Yahoo!"))
        mqg2 = self._mqg_for(figure1_system, ("Steve Wozniak", "Apple Inc."))
        merged = merge_maximal_query_graphs([mqg1, mqg2], r=20)
        founded = Edge(virtual_entity(0), "founded", virtual_entity(1))
        assert founded in set(merged.graph.edges)
        # Both founders have the founded edge, so its merged weight is
        # 2 * max(individual weights) and strictly exceeds both.
        individual = max(
            mqg1.edge_weights[Edge("Jerry Yang", "founded", "Yahoo!")],
            mqg2.edge_weights[Edge("Steve Wozniak", "founded", "Apple Inc.")],
        )
        assert merged.edge_weights[founded] == pytest.approx(2 * individual)

    def test_merged_graph_trimmed_to_target(self, figure1_system):
        mqg1 = self._mqg_for(figure1_system, ("Jerry Yang", "Yahoo!"))
        mqg2 = self._mqg_for(figure1_system, ("Bill Gates", "Microsoft"))
        merged = merge_maximal_query_graphs([mqg1, mqg2], r=6)
        assert merged.num_edges <= max(6, mqg1.num_edges)
        assert merged.graph.is_weakly_connected()

    def test_single_mqg_merge_is_virtualized(self, figure1_system):
        mqg = self._mqg_for(figure1_system, ("Jerry Yang", "Yahoo!"))
        merged = merge_maximal_query_graphs([mqg], r=10)
        assert merged.query_tuple == (virtual_entity(0), virtual_entity(1))
        assert merged.num_edges == mqg.num_edges

    def test_mismatched_arity_raises(self, figure1_system):
        mqg1 = self._mqg_for(figure1_system, ("Jerry Yang", "Yahoo!"))
        mqg2 = self._mqg_for(figure1_system, ("Stanford",))
        with pytest.raises(DiscoveryError):
            merge_maximal_query_graphs([mqg1, mqg2])

    def test_empty_merge_raises(self):
        with pytest.raises(DiscoveryError):
            merge_maximal_query_graphs([])
