"""Streaming (out-of-core) build equivalence and crash-safety tests.

The contract under test: ``build_streaming_snapshot`` produces output that
is **byte-identical** to building the same dump in memory via
``GraphStore.build(load_graph(dump)).save(...)`` — shard for shard, for
every snapshot format — while reading the dump in bounded chunks and
spilling intermediate state to disk.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.datasets.synthetic import DBpediaLikeGenerator, FreebaseLikeGenerator
from repro.exceptions import GraphError, SnapshotError, TripleParseError
from repro.graph.triples import load_graph, write_triples
from repro.storage.build import BuildPlan, build_streaming_snapshot
from repro.storage.snapshot import GraphStore


def _write_dump(tmp_path, seed=3, scale=0.2, duplicates=100, generator=None, name="dump.tsv"):
    """Write a synthetic dump (with injected duplicate lines) and return its path."""
    generator = generator or FreebaseLikeGenerator(seed=seed, scale=scale)
    graph = generator.generate().graph
    edges = list(graph.edges)
    path = tmp_path / name
    lines = [f"{e.subject}\t{e.label}\t{e.object}" for e in edges]
    # Re-emit a deterministic slice of edges as duplicates, interleaved with
    # comments/blank lines, so dedup and seq-ordering both get exercised.
    for i in range(min(duplicates, len(edges))):
        e = edges[(i * 7) % len(edges)]
        lines.append(f"{e.subject}\t{e.label}\t{e.object}")
    text = "# synthetic dump\n" + "\n".join(lines) + "\n\n"
    if name.endswith(".gz"):
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="utf-8")
    return path


def _build_in_memory(dump, output, fmt):
    store = GraphStore.build(load_graph(dump), columnar=True)
    store.save(output, format=fmt)
    return output


def _snapshot_files(root):
    if root.is_file():
        return {"<single-file snapshot>": root.read_bytes()}
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _assert_identical(streamed, reference):
    left = _snapshot_files(streamed)
    right = _snapshot_files(reference)
    assert sorted(left) == sorted(right), "snapshot file sets differ"
    for name in sorted(left):
        assert left[name] == right[name], f"shard {name} differs byte-for-byte"


class TestByteIdentity:
    def test_v3_freebase_with_duplicates_and_spills(self, tmp_path):
        dump = _write_dump(tmp_path, duplicates=150)
        report = build_streaming_snapshot(
            dump, tmp_path / "streamed", snapshot_format="v3", memory_budget_mb=1
        )
        _build_in_memory(dump, tmp_path / "reference", "v3")
        _assert_identical(tmp_path / "streamed", tmp_path / "reference")
        # A 1 MB budget on this dump must actually exercise the external
        # sort, otherwise the test silently degrades to the trivial path.
        assert report["spill_runs"] > 1
        assert report["duplicates"] == 150
        assert report["edges"] == report["triples_read"] - 150

    def test_v3_lookup_cache_eviction(self, tmp_path):
        # Enough distinct terms to overflow the pass-2 lookup cache at the
        # 1 MB floor (cap 1024 entries): eviction while one row's object
        # resolves must not lose the row's already-resolved subject.
        dump = _write_dump(
            tmp_path, generator=FreebaseLikeGenerator(seed=2, scale=2.0), duplicates=80
        )
        report = build_streaming_snapshot(
            dump, tmp_path / "streamed", snapshot_format="v3", memory_budget_mb=1
        )
        assert report["nodes"] > 1024  # the eviction path really ran
        _build_in_memory(dump, tmp_path / "reference", "v3")
        _assert_identical(tmp_path / "streamed", tmp_path / "reference")

    def test_v3_dbpedia_domain(self, tmp_path):
        dump = _write_dump(
            tmp_path, generator=DBpediaLikeGenerator(seed=9, scale=0.2), duplicates=40
        )
        build_streaming_snapshot(
            dump, tmp_path / "streamed", snapshot_format="v3", memory_budget_mb=2
        )
        _build_in_memory(dump, tmp_path / "reference", "v3")
        _assert_identical(tmp_path / "streamed", tmp_path / "reference")

    def test_v3_parallel_workers_match_serial(self, tmp_path):
        dump = _write_dump(tmp_path, seed=5, duplicates=60)
        build_streaming_snapshot(
            dump, tmp_path / "serial", snapshot_format="v3", memory_budget_mb=2
        )
        build_streaming_snapshot(
            dump,
            tmp_path / "parallel",
            snapshot_format="v3",
            workers=2,
            memory_budget_mb=2,
        )
        _assert_identical(tmp_path / "parallel", tmp_path / "serial")

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_v1_v2_degrade_gracefully(self, tmp_path, fmt):
        dump = _write_dump(tmp_path, duplicates=20)
        report = build_streaming_snapshot(
            dump, tmp_path / "streamed", snapshot_format=fmt, memory_budget_mb=4
        )
        _build_in_memory(dump, tmp_path / "reference", fmt)
        _assert_identical(tmp_path / "streamed", tmp_path / "reference")
        assert report["streaming"] is False
        assert report["spill_runs"] == 0

    def test_gzip_dump_matches_plain(self, tmp_path):
        plain = _write_dump(tmp_path, seed=7, duplicates=30, name="dump.tsv")
        gz = _write_dump(tmp_path, seed=7, duplicates=30, name="dump.tsv.gz")
        build_streaming_snapshot(
            gz, tmp_path / "from_gz", snapshot_format="v3", memory_budget_mb=2
        )
        _build_in_memory(plain, tmp_path / "reference", "v3")
        _assert_identical(tmp_path / "from_gz", tmp_path / "reference")

    def test_streamed_snapshot_loads_and_answers(self, tmp_path):
        dump = _write_dump(tmp_path, duplicates=10)
        build_streaming_snapshot(
            dump, tmp_path / "streamed", snapshot_format="v3", memory_budget_mb=2
        )
        store = GraphStore.load(tmp_path / "streamed")
        graph = load_graph(dump)
        assert store.graph.num_edges == graph.num_edges
        assert sorted(store.graph.edges) == sorted(graph.edges)


class TestFailureModes:
    def test_malformed_line_raises_with_line_number(self, tmp_path):
        dump = tmp_path / "bad.tsv"
        dump.write_text("a\tr\tb\nnot a triple\n", encoding="utf-8")
        with pytest.raises(TripleParseError) as info:
            build_streaming_snapshot(dump, tmp_path / "out", snapshot_format="v3")
        assert info.value.line_number == 2

    def test_empty_dump_raises_graph_error(self, tmp_path):
        dump = tmp_path / "empty.tsv"
        dump.write_text("# nothing but comments\n\n", encoding="utf-8")
        with pytest.raises(GraphError):
            build_streaming_snapshot(dump, tmp_path / "out", snapshot_format="v3")

    def test_bad_budget_and_format_rejected(self, tmp_path):
        dump = _write_dump(tmp_path, duplicates=0)
        with pytest.raises(SnapshotError):
            build_streaming_snapshot(
                dump, tmp_path / "out", snapshot_format="v3", memory_budget_mb=0
            )
        with pytest.raises(SnapshotError):
            build_streaming_snapshot(dump, tmp_path / "out", snapshot_format="v9")
        with pytest.raises(SnapshotError):
            BuildPlan(-1)

    def test_crash_mid_build_leaves_no_manifest(self, tmp_path, monkeypatch):
        """A crash before completion must not leave a loadable torn snapshot."""
        import repro.storage.build as build_module

        dump = _write_dump(tmp_path, duplicates=25)
        output = tmp_path / "out"

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(build_module, "_write_graph_shard_streaming", boom)
        with pytest.raises(SnapshotError):
            build_streaming_snapshot(
                dump, output, snapshot_format="v3", memory_budget_mb=2
            )
        # The manifest is written last: a torn build has partial shards but
        # no MANIFEST.json, so loading reports a clean, explicit failure.
        assert not (output / "MANIFEST.json").exists()
        with pytest.raises(SnapshotError):
            GraphStore.load(output)
        # No scratch directories may leak next to the output.
        assert not list(tmp_path.glob("gqbe-build-*"))

        # A rebuild over the partial output succeeds and is byte-identical.
        monkeypatch.undo()
        build_streaming_snapshot(
            dump, output, snapshot_format="v3", memory_budget_mb=2
        )
        _build_in_memory(dump, tmp_path / "reference", "v3")
        _assert_identical(output, tmp_path / "reference")

    def test_manifest_is_canonical_json(self, tmp_path):
        dump = _write_dump(tmp_path, duplicates=5)
        build_streaming_snapshot(
            dump, tmp_path / "out", snapshot_format="v3", memory_budget_mb=2
        )
        raw = (tmp_path / "out" / "MANIFEST.json").read_text(encoding="utf-8")
        manifest = json.loads(raw)
        assert raw == json.dumps(manifest, indent=1, sort_keys=True)
        assert manifest["format_version"] == 3


class TestCLI:
    def test_build_index_streaming_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        dump = _write_dump(tmp_path, duplicates=15)
        code = main(
            [
                "build-index",
                str(dump),
                str(tmp_path / "streamed"),
                "--format",
                "v3",
                "--streaming",
                "--memory-budget-mb",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming" in out
        assert "rows/s" in out
        assert "spill runs" in out
        _build_in_memory(dump, tmp_path / "reference", "v3")
        _assert_identical(tmp_path / "streamed", tmp_path / "reference")

    def test_build_index_quiet_suppresses_output(self, tmp_path, capsys):
        from repro.cli import main

        dump = _write_dump(tmp_path, duplicates=0)
        code = main(
            ["build-index", str(dump), str(tmp_path / "out"), "--streaming", "--quiet"]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_build_index_rows_conflicts_with_streaming(self, tmp_path, capsys):
        from repro.cli import main

        dump = _write_dump(tmp_path, duplicates=0)
        code = main(
            ["build-index", str(dump), str(tmp_path / "out"), "--streaming", "--rows"]
        )
        assert code == 2
        assert "--rows" in capsys.readouterr().err


class TestBuildPlan:
    def test_budgets_scale_monotonically(self):
        small, large = BuildPlan(8), BuildPlan(1024)
        assert small.chunk_triples <= large.chunk_triples
        assert small.term_buffer <= large.term_buffer
        assert small.row_buffer <= large.row_buffer
        assert small.io_elements <= large.io_elements

    def test_floors_keep_tiny_budgets_usable(self):
        plan = BuildPlan(1)
        assert plan.chunk_triples >= 1024
        assert plan.term_buffer >= 1024
        assert plan.row_buffer >= 1024
