"""Unit tests for triple parsing and serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import TripleParseError
from repro.graph.triples import (
    Triple,
    format_triple,
    graph_to_triples,
    load_graph,
    read_triples,
    triples_from_strings,
    write_triples,
)
from repro.graph.knowledge_graph import KnowledgeGraph


class TestTSVParsing:
    def test_basic_tsv(self):
        triples = triples_from_strings("a\tr\tb\nb\ts\tc\n", fmt="tsv")
        assert triples == [Triple("a", "r", "b"), Triple("b", "s", "c")]

    def test_blank_lines_and_comments_skipped(self):
        text = "# comment\n\na\tr\tb\n   \n"
        assert len(triples_from_strings(text)) == 1

    def test_wrong_field_count_raises(self):
        with pytest.raises(TripleParseError) as info:
            triples_from_strings("a\tb\n", fmt="tsv")
        assert info.value.line_number == 1

    def test_empty_field_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("a\t\tb\n", fmt="tsv")

    def test_whitespace_in_fields_is_stripped(self):
        triples = triples_from_strings(" a \t r \t b \n", fmt="tsv")
        assert triples == [Triple("a", "r", "b")]


class TestNTParsing:
    def test_basic_nt(self):
        triples = triples_from_strings("<a> <r> <b> .\n", fmt="nt")
        assert triples == [Triple("a", "r", "b")]

    def test_autodetect_nt(self):
        triples = triples_from_strings("<a> <r> <b> .\n")
        assert triples == [Triple("a", "r", "b")]

    def test_autodetect_tsv(self):
        triples = triples_from_strings("a\tr\tb\n")
        assert triples == [Triple("a", "r", "b")]

    def test_missing_dot_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("<a> <r> <b>\n", fmt="nt")

    def test_unterminated_term_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("<a> <r> <b .\n", fmt="nt")

    def test_trailing_content_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("<a> <r> <b> <c> .\n", fmt="nt")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            triples_from_strings("a\tr\tb", fmt="xml")


class TestRoundTrip:
    def test_format_triple_tsv_and_nt(self):
        triple = Triple("a", "r", "b")
        assert format_triple(triple, fmt="tsv") == "a\tr\tb"
        assert format_triple(triple, fmt="nt") == "<a> <r> <b> ."
        with pytest.raises(ValueError):
            format_triple(triple, fmt="json")

    def test_write_and_read_tsv(self, tmp_path):
        path = tmp_path / "graph.tsv"
        triples = [Triple("a", "r", "b"), Triple("b", "s", "c")]
        count = write_triples(triples, path, fmt="tsv")
        assert count == 2
        assert read_triples(path) == triples

    def test_write_and_read_nt(self, tmp_path):
        path = tmp_path / "graph.nt"
        triples = [Triple("a", "r", "b")]
        write_triples(triples, path, fmt="nt")
        assert read_triples(path, fmt="nt") == triples

    def test_load_graph(self, tmp_path):
        path = tmp_path / "graph.tsv"
        write_triples([Triple("a", "r", "b"), Triple("b", "s", "c")], path)
        graph = load_graph(path)
        assert graph.num_edges == 2
        assert graph.has_edge("a", "r", "b")

    def test_graph_to_triples_is_sorted_and_complete(self):
        graph = KnowledgeGraph([("b", "s", "c"), ("a", "r", "b")])
        triples = graph_to_triples(graph)
        assert triples == sorted(triples)
        assert len(triples) == 2
