"""Unit tests for triple parsing and serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import TripleParseError
from repro.graph.triples import (
    Triple,
    format_triple,
    graph_to_triples,
    iter_triples_chunked,
    load_graph,
    read_triples,
    resolve_path_format,
    triples_from_strings,
    write_triples,
)
from repro.graph.knowledge_graph import KnowledgeGraph


class TestTSVParsing:
    def test_basic_tsv(self):
        triples = triples_from_strings("a\tr\tb\nb\ts\tc\n", fmt="tsv")
        assert triples == [Triple("a", "r", "b"), Triple("b", "s", "c")]

    def test_blank_lines_and_comments_skipped(self):
        text = "# comment\n\na\tr\tb\n   \n"
        assert len(triples_from_strings(text)) == 1

    def test_wrong_field_count_raises(self):
        with pytest.raises(TripleParseError) as info:
            triples_from_strings("a\tb\n", fmt="tsv")
        assert info.value.line_number == 1

    def test_empty_field_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("a\t\tb\n", fmt="tsv")

    def test_whitespace_in_fields_is_stripped(self):
        triples = triples_from_strings(" a \t r \t b \n", fmt="tsv")
        assert triples == [Triple("a", "r", "b")]


class TestNTParsing:
    def test_basic_nt(self):
        triples = triples_from_strings("<a> <r> <b> .\n", fmt="nt")
        assert triples == [Triple("a", "r", "b")]

    def test_autodetect_nt(self):
        triples = triples_from_strings("<a> <r> <b> .\n")
        assert triples == [Triple("a", "r", "b")]

    def test_autodetect_tsv(self):
        triples = triples_from_strings("a\tr\tb\n")
        assert triples == [Triple("a", "r", "b")]

    def test_missing_dot_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("<a> <r> <b>\n", fmt="nt")

    def test_unterminated_term_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("<a> <r> <b .\n", fmt="nt")

    def test_trailing_content_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings("<a> <r> <b> <c> .\n", fmt="nt")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            triples_from_strings("a\tr\tb", fmt="xml")


class TestRoundTrip:
    def test_format_triple_tsv_and_nt(self):
        triple = Triple("a", "r", "b")
        assert format_triple(triple, fmt="tsv") == "a\tr\tb"
        assert format_triple(triple, fmt="nt") == "<a> <r> <b> ."
        with pytest.raises(ValueError):
            format_triple(triple, fmt="json")

    def test_write_and_read_tsv(self, tmp_path):
        path = tmp_path / "graph.tsv"
        triples = [Triple("a", "r", "b"), Triple("b", "s", "c")]
        count = write_triples(triples, path, fmt="tsv")
        assert count == 2
        assert read_triples(path) == triples

    def test_write_and_read_nt(self, tmp_path):
        path = tmp_path / "graph.nt"
        triples = [Triple("a", "r", "b")]
        write_triples(triples, path, fmt="nt")
        assert read_triples(path, fmt="nt") == triples

    def test_load_graph(self, tmp_path):
        path = tmp_path / "graph.tsv"
        write_triples([Triple("a", "r", "b"), Triple("b", "s", "c")], path)
        graph = load_graph(path)
        assert graph.num_edges == 2
        assert graph.has_edge("a", "r", "b")

    def test_graph_to_triples_is_sorted_and_complete(self):
        graph = KnowledgeGraph([("b", "s", "c"), ("a", "r", "b")])
        triples = graph_to_triples(graph)
        assert triples == sorted(triples)
        assert len(triples) == 2


class TestGzipTransparency:
    def test_write_and_read_gz_roundtrip(self, tmp_path):
        path = tmp_path / "graph.tsv.gz"
        triples = [Triple("a", "r", "b"), Triple("b", "s", "c")]
        assert write_triples(triples, path, fmt="tsv") == 2
        import gzip

        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert handle.readline() == "a\tr\tb\n"
        assert read_triples(path) == triples

    def test_load_graph_from_gz(self, tmp_path):
        path = tmp_path / "graph.nt.gz"
        write_triples([Triple("a", "r", "b")], path, fmt="nt")
        assert load_graph(path).has_edge("a", "r", "b")


class TestChunkedReader:
    def test_chunks_concatenate_to_read_triples(self, tmp_path):
        path = tmp_path / "graph.tsv"
        triples = [Triple(f"n{i}", f"r{i % 3}", f"n{i + 1}") for i in range(25)]
        write_triples(triples, path)
        chunks = list(iter_triples_chunked(path, chunk_size=7))
        assert all(len(chunk) <= 7 for chunk in chunks)
        assert [len(chunk) for chunk in chunks[:-1]] == [7, 7, 7]
        flat = [triple for chunk in chunks for triple in chunk]
        assert flat == read_triples(path)

    def test_chunked_reads_gz(self, tmp_path):
        path = tmp_path / "graph.tsv.gz"
        triples = [Triple("a", "r", "b"), Triple("b", "s", "c")]
        write_triples(triples, path)
        flat = [t for chunk in iter_triples_chunked(path, chunk_size=1) for t in chunk]
        assert flat == triples

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = tmp_path / "graph.tsv"
        write_triples([Triple("a", "r", "b")], path)
        with pytest.raises(ValueError):
            list(iter_triples_chunked(path, chunk_size=0))

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("a\tr\tb\nbroken line\n", encoding="utf-8")
        with pytest.raises(TripleParseError) as info:
            list(iter_triples_chunked(path))
        assert info.value.line_number == 2


class TestCSVAdapter:
    def test_neo4j_export_header(self):
        text = ':START_ID,:TYPE,:END_ID\nn1,KNOWS,n2\nn2,LIKES,n3\n'
        triples = triples_from_strings(text, fmt="csv")
        assert triples == [Triple("n1", "KNOWS", "n2"), Triple("n2", "LIKES", "n3")]

    def test_age_export_header(self):
        text = "_start,_type,_end\nn1,KNOWS,n2\n"
        assert triples_from_strings(text, fmt="csv") == [Triple("n1", "KNOWS", "n2")]

    def test_spo_header_and_extra_columns(self):
        text = "weight,subject,predicate,object\n0.5,a,r,b\n"
        assert triples_from_strings(text, fmt="csv") == [Triple("a", "r", "b")]

    def test_headerless_positional(self):
        text = "n1,KNOWS,n2\nn2,LIKES,n3\n"
        triples = triples_from_strings(text, fmt="csv")
        assert triples == [Triple("n1", "KNOWS", "n2"), Triple("n2", "LIKES", "n3")]

    def test_quoted_fields_with_commas(self):
        text = ':START_ID,:TYPE,:END_ID\n"Benioff, Marc",founded,Salesforce\n'
        assert triples_from_strings(text, fmt="csv") == [
            Triple("Benioff, Marc", "founded", "Salesforce")
        ]

    def test_unrecognized_header_raises(self):
        with pytest.raises(TripleParseError) as info:
            triples_from_strings("colour,shape,size,extra\nred,round,big,x\n", fmt="csv")
        assert "unrecognized CSV export header" in info.value.reason

    def test_short_row_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings(":START_ID,:TYPE,:END_ID\nn1,KNOWS\n", fmt="csv")

    def test_empty_field_raises(self):
        with pytest.raises(TripleParseError):
            triples_from_strings(":START_ID,:TYPE,:END_ID\nn1,,n2\n", fmt="csv")

    def test_csv_suffix_selects_csv(self, tmp_path):
        path = tmp_path / "rels.csv"
        path.write_text(":START_ID,:TYPE,:END_ID\nn1,KNOWS,n2\n", encoding="utf-8")
        assert resolve_path_format(path) == "csv"
        assert resolve_path_format(tmp_path / "rels.csv.gz") == "csv"
        assert resolve_path_format(tmp_path / "rels.tsv") == "auto"
        assert read_triples(path) == [Triple("n1", "KNOWS", "n2")]

    def test_csv_never_autodetected_from_content(self):
        # Without fmt="csv" or a .csv path, comma rows are not TSV/NT.
        with pytest.raises(TripleParseError):
            triples_from_strings("n1,KNOWS,n2\n")
