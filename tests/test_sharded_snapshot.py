"""Tests for the v2/v3 sharded snapshot formats (``storage/shards.py``).

Pins the contracts the mmap path must guarantee:

* a v2-mapped and a v3-mapped system answer **byte-identically** to the
  cold build and to a v1-loaded system;
* warm starts are *partial* — only the manifest is read up front, and a
  query maps only the label shards its plan actually probes (asserted
  via the reader's lazy-load counters);
* mapped tables promote copy-on-write on mutation and never write
  through to the snapshot files;
* v3 maps the remaining pickled sections: the vocabulary reopens as a
  :class:`MappedVocabulary` string arena and the graph as a
  :class:`MappedKnowledgeGraph` CSR view, while plain v2 directories
  keep loading unchanged;
* every corruption mode — truncated shard, checksum mismatch, missing
  shard file, a directory carrying a v1 magic, a truncated vocabulary
  arena, out-of-range arena offsets, a non-monotonic CSR indptr —
  raises ``SnapshotError`` naming the offending path, for all formats.
"""

from __future__ import annotations

import hashlib
import json
import struct

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.exceptions import SnapshotError
from repro.graph.mapped import MappedKnowledgeGraph
from repro.graph.triples import write_triples
from repro.storage.shards import MANIFEST_NAME, ShardedSnapshotReader
from repro.storage.snapshot import GraphStore, read_snapshot_meta
from repro.storage.vocabulary import MappedVocabulary, Vocabulary


@pytest.fixture(scope="module")
def dataset():
    return FreebaseLikeGenerator(seed=5, scale=0.2).generate()


@pytest.fixture(scope="module")
def config():
    return GQBEConfig(mqg_size=8, k_prime=25, max_join_rows=100_000)


@pytest.fixture(scope="module")
def snapshot_dir(dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snap") / "freebase.snapdir"
    GraphStore.build(dataset.graph).save(directory, format="v2")
    return directory


@pytest.fixture(scope="module")
def snapshot_v3_dir(dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snap") / "freebase.snapdir3"
    GraphStore.build(dataset.graph).save(directory, format="v3")
    return directory


@pytest.fixture(scope="module")
def v1_path(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "freebase.snap"
    GraphStore.build(dataset.graph).save(path)
    return path


def _answer_key(result):
    return [
        (a.rank, a.entities, a.score, a.structure_score, a.content_score)
        for a in result.answers
    ]


def _copy_snapshot_dir(source, target):
    target.mkdir()
    (target / "tables").mkdir()
    for item in source.rglob("*"):
        if item.is_file():
            destination = target / item.relative_to(source)
            destination.write_bytes(item.read_bytes())
    return target


def _patch_shard_array(path, name, transform):
    """Rewrite one named array inside a binary shard file in place."""
    data = bytearray(path.read_bytes())
    _magic, _version, header_length = struct.unpack_from("<8sII", data, 0)
    header = json.loads(bytes(data[16 : 16 + header_length]))
    base = (16 + header_length + 63) // 64 * 64
    spec = header["arrays"][name]
    dtype = spec.get("dtype", "<i8")
    itemsize = 1 if dtype == "u1" else 8
    start = base + spec["offset"]
    end = start + spec["count"] * itemsize
    array = np.frombuffer(bytes(data[start:end]), dtype=dtype).copy()
    transform(array)
    data[start:end] = array.tobytes()
    path.write_bytes(bytes(data))


def _refresh_manifest_sha(directory, *keys):
    """Recompute a shard's manifest checksum after a deliberate rewrite.

    Structural-corruption tests must get *past* the checksum gate to
    prove the reader also validates what the bytes claim.
    """
    manifest = json.loads((directory / MANIFEST_NAME).read_text())
    entry = manifest
    for key in keys:
        entry = entry[key]
    shard = directory / entry["file"]
    entry["sha256"] = hashlib.sha256(shard.read_bytes()).hexdigest()
    entry["bytes"] = shard.stat().st_size
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest))


class TestRoundTrip:
    def test_byte_identical_to_cold_and_v1(
        self, dataset, config, snapshot_dir, v1_path
    ):
        cold = GQBE(dataset.graph, config=config)
        warm_v1 = GQBE(config=config, graph_store=GraphStore.load(v1_path))
        warm_v2 = GQBE(config=config, graph_store=GraphStore.load(snapshot_dir))
        for table_name in dataset.table_names()[:2]:
            query_tuple = tuple(dataset.table(table_name)[0])
            reference = _answer_key(cold.query(query_tuple, k=10))
            assert _answer_key(warm_v1.query(query_tuple, k=10)) == reference
            assert _answer_key(warm_v2.query(query_tuple, k=10)) == reference

    def test_shape_flags_and_meta(self, dataset, snapshot_dir):
        loaded = GraphStore.load(snapshot_dir)
        assert loaded.columnar and loaded.intern_entities
        meta = read_snapshot_meta(snapshot_dir)
        assert meta["num_edges"] == dataset.graph.num_edges
        assert meta["num_labels"] == dataset.graph.num_labels
        # Shape questions are answered from the manifest without opening
        # a single shard.
        assert loaded.store.num_rows == dataset.graph.num_edges
        assert loaded.store.num_tables == dataset.graph.num_labels
        assert loaded.lazy_report()["tables_opened"] == 0

    def test_v2_refuses_rows_engine(self, dataset, tmp_path):
        bundle = GraphStore.build(dataset.graph, columnar=False)
        with pytest.raises(SnapshotError, match="columnar"):
            bundle.save(tmp_path / "rows.snapdir", format="v2")

    def test_unknown_format_rejected(self, dataset, tmp_path):
        bundle = GraphStore.build(dataset.graph)
        with pytest.raises(SnapshotError, match="unknown snapshot format"):
            bundle.save(tmp_path / "x.snap", format="v9")

    def test_v2_resaves_as_v1(self, dataset, config, snapshot_dir, tmp_path):
        """A mapped bundle can be re-serialized self-contained (no mmap
        handles leak into the pickle)."""
        mapped = GraphStore.load(snapshot_dir)
        resaved = tmp_path / "resaved.snap"
        mapped.save(resaved)
        system = GQBE.from_snapshot(resaved, config=config)
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        reference = GQBE(config=config, graph_store=GraphStore.load(snapshot_dir))
        assert _answer_key(system.query(query_tuple, k=5)) == _answer_key(
            reference.query(query_tuple, k=5)
        )


class TestV3MappedSections:
    """The v3 tentpole: vocabulary arena + graph CSR are mapped shards."""

    def test_byte_identical_to_cold_v1_v2(
        self, dataset, config, snapshot_dir, snapshot_v3_dir, v1_path
    ):
        cold = GQBE(dataset.graph, config=config)
        warm_v1 = GQBE(config=config, graph_store=GraphStore.load(v1_path))
        warm_v2 = GQBE(config=config, graph_store=GraphStore.load(snapshot_dir))
        warm_v3 = GQBE(config=config, graph_store=GraphStore.load(snapshot_v3_dir))
        for table_name in dataset.table_names()[:2]:
            query_tuple = tuple(dataset.table(table_name)[0])
            reference = _answer_key(cold.query(query_tuple, k=10))
            assert _answer_key(warm_v1.query(query_tuple, k=10)) == reference
            assert _answer_key(warm_v2.query(query_tuple, k=10)) == reference
            assert _answer_key(warm_v3.query(query_tuple, k=10)) == reference

    def test_vocabulary_and_graph_are_mapped(self, dataset, config, snapshot_v3_dir):
        bundle = GraphStore.load(snapshot_v3_dir)
        system = GQBE(config=config, graph_store=bundle)
        assert isinstance(system.graph, MappedKnowledgeGraph)
        assert isinstance(system.store.vocabulary, MappedVocabulary)
        report = bundle.lazy_report()
        assert report["format"] == "v3"
        assert "vocabulary" in report["sections_loaded"]
        assert "graph" in report["sections_loaded"]
        # The v3 store skeleton carries no vocabulary and there is no
        # pickled graph section at all.
        assert not (snapshot_v3_dir / "graph.section").exists()
        assert (snapshot_v3_dir / "vocabulary.arena").exists()
        assert (snapshot_v3_dir / "graph.csr").exists()

    def test_warm_start_is_lazy(self, snapshot_v3_dir):
        bundle = GraphStore.load(snapshot_v3_dir)
        report = bundle.lazy_report()
        assert report["sections_loaded"] == [] and report["tables_opened"] == 0

    def test_mapped_graph_matches_built_graph(self, dataset, snapshot_v3_dir):
        graph = dataset.graph
        mapped = GraphStore.load(snapshot_v3_dir).graph
        assert mapped.num_nodes == graph.num_nodes
        assert mapped.num_edges == graph.num_edges
        assert mapped.num_labels == graph.num_labels
        assert mapped.label_counts() == graph.label_counts()
        assert set(mapped.nodes) == set(graph.nodes)
        some_edges = list(graph.edges)[:25]
        for edge in some_edges:
            assert mapped.has_edge(*edge)
            assert edge in mapped
        assert not mapped.has_edge("no-such", "nope", "nothing")
        for node in list(graph.nodes)[:10]:
            assert mapped.has_node(node)
            # Per-node adjacency lists match the original orders exactly.
            assert mapped.out_edges(node) == graph.out_edges(node)
            assert mapped.in_edges(node) == graph.in_edges(node)
            assert mapped.incident_edges(node) == graph.incident_edges(node)
            assert mapped.neighbors(node) == graph.neighbors(node)
        assert mapped.to_knowledge_graph() == graph

    def test_mapped_vocabulary_contract(self, snapshot_v3_dir):
        vocabulary = GraphStore.load(snapshot_v3_dir)._vocabulary_from_arena()
        terms = list(vocabulary)
        assert len(terms) == len(vocabulary)
        for index in (0, len(terms) // 2, len(terms) - 1):
            assert vocabulary.term_of(index) == terms[index]
            assert vocabulary.id_of(terms[index]) == index
            assert terms[index] in vocabulary
        assert vocabulary.id_of("definitely-not-in-the-graph") is None
        assert "definitely-not-in-the-graph" not in vocabulary
        assert vocabulary.decode_row((0, 1)) == (terms[0], terms[1])
        # Interning an existing term is stable; a new term goes to the
        # overlay past the mapped range (the snapshot is untouched).
        assert vocabulary.intern(terms[3]) == 3
        new_id = vocabulary.intern("overlay-term")
        assert new_id == len(terms)
        assert vocabulary.term_of(new_id) == "overlay-term"
        assert vocabulary.id_of("overlay-term") == new_id

    def test_v3_resaves_stay_self_contained(
        self, dataset, config, snapshot_v3_dir, tmp_path
    ):
        """v3 → v1 / v2 / v3 resaves carry no mapped handles and answer
        byte-identically."""
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        reference = _answer_key(
            GQBE(config=config, graph_store=GraphStore.load(snapshot_v3_dir)).query(
                query_tuple, k=5
            )
        )
        for format, name in (("v1", "re.snap"), ("v2", "re.v2dir"), ("v3", "re.v3dir")):
            target = tmp_path / name
            GraphStore.load(snapshot_v3_dir).save(target, format=format)
            system = GQBE.from_snapshot(target, config=config)
            assert _answer_key(system.query(query_tuple, k=5)) == reference, format

    def test_v3_mapped_vocabulary_pickles_as_owned(self, snapshot_v3_dir):
        import pickle

        vocabulary = GraphStore.load(snapshot_v3_dir)._vocabulary_from_arena()
        clone = pickle.loads(pickle.dumps(vocabulary))
        assert isinstance(clone, Vocabulary)
        assert list(clone) == list(vocabulary)
        assert clone.id_of(next(iter(vocabulary))) == 0

    def test_query_still_maps_only_probed_shards(
        self, dataset, config, snapshot_v3_dir
    ):
        bundle = GraphStore.load(snapshot_v3_dir)
        system = GQBE(config=config, graph_store=bundle)
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        system.query(query_tuple, k=5)
        report = bundle.lazy_report()
        assert 0 < report["tables_opened"] < report["tables_total"]

    def test_prefetch_can_be_disabled(self, dataset, config, snapshot_v3_dir):
        from dataclasses import replace

        bundle = GraphStore.load(snapshot_v3_dir)
        system = GQBE(
            config=replace(config, prefetch_shards=False), graph_store=bundle
        )
        # The flag reaches both layers: plan-time opening on the store
        # and madvise read-ahead on the shard reader.
        assert bundle._reader.prefetch is False
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        assert system.store.prefetch_labels(["anything"]) == 0
        system.query(query_tuple, k=5)
        report = bundle.lazy_report()
        assert 0 < report["tables_opened"] < report["tables_total"]

    def test_meta_reads_without_touching_shards(self, dataset, snapshot_v3_dir):
        meta = read_snapshot_meta(snapshot_v3_dir)
        assert meta["num_edges"] == dataset.graph.num_edges
        assert meta["num_nodes"] == dataset.graph.num_nodes


class TestLazyLoading:
    def test_query_maps_only_probed_shards(self, dataset, config, snapshot_dir):
        store_bundle = GraphStore.load(snapshot_dir)
        system = GQBE(config=config, graph_store=store_bundle)
        assert store_bundle.lazy_report()["tables_opened"] == 0
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        system.query(query_tuple, k=5)
        report = store_bundle.lazy_report()
        assert 0 < report["tables_opened"] < report["tables_total"]
        # The opened labels are real labels of the graph, and nothing
        # was opened twice.
        assert len(set(report["opened_labels"])) == report["tables_opened"]

    def test_cardinality_is_shard_free(self, snapshot_dir):
        bundle = GraphStore.load(snapshot_dir)
        store = bundle.store
        rows = {label: store.cardinality(label) for label in store.labels()}
        assert sum(rows.values()) == store.num_rows
        assert bundle.lazy_report()["tables_opened"] == 0

    def test_mapped_table_promotes_on_mutation(self, snapshot_dir):
        bundle = GraphStore.load(snapshot_dir)
        store = bundle.store
        label = next(iter(store.labels()))
        table = store.table(label)
        assert table.is_mapped
        before_rows = table.rows()
        shard_bytes = {
            path: path.read_bytes()
            for path in (snapshot_dir / "tables").iterdir()
        }
        table.add_row(999_999, 999_998)
        assert not table.is_mapped
        assert table.rows() == before_rows + [(999_999, 999_998)]
        assert table.has_row(999_999, 999_998)
        # Copy-on-write: the snapshot files never change.
        for path, original in shard_bytes.items():
            assert path.read_bytes() == original


class TestCorruptionPaths:
    """Satellite: every corruption mode raises SnapshotError naming the
    offending path, across both formats."""

    def test_truncated_shard(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "truncated")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        entry = manifest["tables"][0]
        shard = broken / entry["file"]
        shard.write_bytes(shard.read_bytes()[:24])
        with pytest.raises(SnapshotError, match=entry["file"].split("/")[-1]):
            GraphStore.load(broken).store.table(entry["label"])

    def test_shard_checksum_mismatch(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "bitrot")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        entry = manifest["tables"][0]
        shard = broken / entry["file"]
        data = bytearray(shard.read_bytes())
        data[-1] ^= 0xFF
        shard.write_bytes(bytes(data))
        with pytest.raises(SnapshotError) as excinfo:
            GraphStore.load(broken).store.table(entry["label"])
        assert "checksum mismatch" in str(excinfo.value)
        assert entry["file"].split("/")[-1] in str(excinfo.value)

    def test_missing_shard_file(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "missing")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        entry = manifest["tables"][0]
        (broken / entry["file"]).unlink()
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(broken).store.table(entry["label"])
        assert entry["file"].split("/")[-1] in str(excinfo.value)

    def test_v2_directory_with_v1_magic(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "wrongmagic")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        manifest["magic"] = "GQBESNAP"  # the v1 magic
        (broken / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="not a v2/v3 snapshot") as excinfo:
            GraphStore.load(broken)
        assert MANIFEST_NAME in str(excinfo.value)

    def test_future_manifest_version(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "future")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        manifest["format_version"] = 99
        (broken / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version 99"):
            GraphStore.load(broken)

    def test_manifest_not_json(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "badjson")
        (broken / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="not valid JSON"):
            GraphStore.load(broken)

    def test_directory_without_manifest(self, tmp_path):
        empty = tmp_path / "empty.snapdir"
        empty.mkdir()
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(empty)
        assert MANIFEST_NAME in str(excinfo.value)

    def test_corrupt_section(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "badsection")
        section = broken / "statistics.section"
        data = bytearray(section.read_bytes())
        data[0] ^= 0xFF
        section.write_bytes(bytes(data))
        bundle = GraphStore.load(broken)
        with pytest.raises(SnapshotError, match="statistics.section"):
            _ = bundle.statistics

    # --- v3 mapped-section shards (vocabulary arena + graph CSR) ------
    def _broken_v3(self, snapshot_v3_dir, tmp_path, name):
        return _copy_snapshot_dir(snapshot_v3_dir, tmp_path / name)

    def test_truncated_vocabulary_arena(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "truncarena")
        arena = broken / "vocabulary.arena"
        arena.write_bytes(arena.read_bytes()[:128])
        _refresh_manifest_sha(broken, "vocabulary")
        with pytest.raises(SnapshotError, match="truncated|missing") as excinfo:
            GraphStore.load(broken).store
        assert "vocabulary.arena" in str(excinfo.value)

    def test_vocabulary_arena_checksum_mismatch(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "arenarot")
        arena = broken / "vocabulary.arena"
        data = bytearray(arena.read_bytes())
        data[-1] ^= 0xFF
        arena.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="checksum mismatch") as excinfo:
            GraphStore.load(broken).store
        assert "vocabulary.arena" in str(excinfo.value)

    def test_vocabulary_offsets_out_of_range(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "badoffsets")

        def overflow(offsets):
            offsets[-1] += 4096  # addresses bytes past the blob

        _patch_shard_array(broken / "vocabulary.arena", "offsets", overflow)
        _refresh_manifest_sha(broken, "vocabulary")
        with pytest.raises(SnapshotError, match="offsets out of range") as excinfo:
            GraphStore.load(broken).store
        assert "vocabulary.arena" in str(excinfo.value)

    def test_vocabulary_offsets_non_monotonic(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "zigzag")

        def zigzag(offsets):
            if len(offsets) > 2:
                offsets[1], offsets[2] = offsets[2] + 1, offsets[1]

        _patch_shard_array(broken / "vocabulary.arena", "offsets", zigzag)
        _refresh_manifest_sha(broken, "vocabulary")
        with pytest.raises(SnapshotError, match="monotonic") as excinfo:
            GraphStore.load(broken).store
        assert "vocabulary.arena" in str(excinfo.value)

    def test_vocabulary_sort_permutation_scrambled(self, snapshot_v3_dir, tmp_path):
        """A permutation that no longer sorts the terms must be reported
        as corruption — a silent load would break id_of and turn valid
        queries into UnknownEntityError."""
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "scrambledperm")

        def swap_extremes(sorted_ids):
            sorted_ids[0], sorted_ids[-1] = sorted_ids[-1], sorted_ids[0]

        _patch_shard_array(broken / "vocabulary.arena", "sorted_ids", swap_extremes)
        _refresh_manifest_sha(broken, "vocabulary")
        with pytest.raises(SnapshotError, match="not in term byte order") as excinfo:
            GraphStore.load(broken).store
        assert "vocabulary.arena" in str(excinfo.value)

    def test_graph_csr_non_monotonic_indptr(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "badindptr")

        def scramble(indptr):
            indptr[len(indptr) // 2] = -5  # guaranteed descent mid-array

        _patch_shard_array(broken / "graph.csr", "out_indptr", scramble)
        _refresh_manifest_sha(broken, "graph")
        with pytest.raises(SnapshotError, match="non-monotonic") as excinfo:
            GraphStore.load(broken).graph
        assert "graph.csr" in str(excinfo.value)

    def test_graph_csr_ids_out_of_range(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "badids")

        def escape(objects):
            objects[0] = 2**40  # far outside the node-id range

        _patch_shard_array(broken / "graph.csr", "out_objects", escape)
        _refresh_manifest_sha(broken, "graph")
        with pytest.raises(SnapshotError, match="outside") as excinfo:
            GraphStore.load(broken).graph
        assert "graph.csr" in str(excinfo.value)

    def test_missing_graph_shard(self, snapshot_v3_dir, tmp_path):
        broken = self._broken_v3(snapshot_v3_dir, tmp_path, "nograph")
        (broken / "graph.csr").unlink()
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(broken).graph
        assert "graph.csr" in str(excinfo.value)

    # --- the same satellite guarantees on the v1 single file ----------
    def test_v1_truncation_names_path(self, v1_path, tmp_path):
        data = v1_path.read_bytes()
        path = tmp_path / "truncated.snap"
        path.write_bytes(data[:-50])
        with pytest.raises(SnapshotError, match="truncated") as excinfo:
            GraphStore.load(path)
        assert path.name in str(excinfo.value)

    def test_v1_checksum_names_path(self, v1_path, tmp_path):
        data = bytearray(v1_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path = tmp_path / "corrupt.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="corrupt") as excinfo:
            GraphStore.load(path)
        assert path.name in str(excinfo.value)

    def test_v1_missing_file_names_path(self, tmp_path):
        path = tmp_path / "nope.snap"
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(path)
        assert path.name in str(excinfo.value)


class TestPartialGenerations:
    """Corruption matrix extension for compaction generations: a torn
    generation directory must be skipped by startup resolution and must
    raise ``SnapshotError`` if loaded directly."""

    def _family(self, snapshot_v3_dir, tmp_path):
        from repro.storage.generations import generation_path

        root = _copy_snapshot_dir(snapshot_v3_dir, tmp_path / "base.snapdir")
        return root, generation_path(root, 1)

    def test_manifestless_generation_is_skipped_and_unloadable(
        self, snapshot_v3_dir, tmp_path
    ):
        from repro.storage.generations import resolve_latest_generation

        root, gen1 = self._family(snapshot_v3_dir, tmp_path)
        gen1.mkdir()  # a compaction that died before any manifest write
        assert resolve_latest_generation(root) == root
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(gen1)
        assert MANIFEST_NAME in str(excinfo.value)

    def test_generation_with_truncated_section_fails_closed(
        self, snapshot_v3_dir, tmp_path
    ):
        from repro.storage.generations import resolve_latest_generation

        root, gen1 = self._family(snapshot_v3_dir, tmp_path)
        _copy_snapshot_dir(snapshot_v3_dir, gen1)
        section = gen1 / "statistics.section"
        section.write_bytes(section.read_bytes()[:10])
        # The manifest is intact, so resolution (manifest-only) accepts
        # the generation — but materializing the torn section still
        # fails closed with SnapshotError, never silent garbage.
        assert resolve_latest_generation(root) == gen1
        with pytest.raises(SnapshotError, match="statistics.section"):
            _ = GraphStore.load(gen1).statistics

    def test_generation_with_corrupt_manifest_is_skipped(
        self, snapshot_v3_dir, tmp_path
    ):
        from repro.storage.generations import resolve_latest_generation

        root, gen1 = self._family(snapshot_v3_dir, tmp_path)
        _copy_snapshot_dir(snapshot_v3_dir, gen1)
        (gen1 / MANIFEST_NAME).write_text("{not json")
        assert resolve_latest_generation(root) == root
        with pytest.raises(SnapshotError, match="not valid JSON"):
            GraphStore.load(gen1)


class TestCLIWorkflow:
    def test_build_index_v2_then_query(self, tmp_path, capsys, figure1_graph):
        triples = tmp_path / "fig1.tsv"
        write_triples(sorted(figure1_graph.edges), triples)
        snapshot = tmp_path / "fig1.snapdir"

        assert (
            main(["build-index", str(triples), str(snapshot), "--format", "v2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "v2 sharded directory" in out
        assert (snapshot / MANIFEST_NAME).exists()

        code = main(
            [
                "query",
                "--snapshot",
                str(snapshot),
                "--tuple",
                "Jerry Yang,Yahoo!",
                "--k",
                "3",
                "--mqg-size",
                "8",
            ]
        )
        assert code == 0
        assert "Top-3 answers" in capsys.readouterr().out

    def test_build_index_v3_then_query(self, tmp_path, capsys, figure1_graph):
        triples = tmp_path / "fig1.tsv"
        write_triples(sorted(figure1_graph.edges), triples)
        snapshot = tmp_path / "fig1.snapdir3"

        assert (
            main(["build-index", str(triples), str(snapshot), "--format", "v3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "v3 sharded directory" in out
        assert (snapshot / "vocabulary.arena").exists()
        assert (snapshot / "graph.csr").exists()
        assert not (snapshot / "graph.section").exists()

        code = main(
            [
                "query",
                "--snapshot",
                str(snapshot),
                "--tuple",
                "Jerry Yang,Yahoo!",
                "--k",
                "3",
                "--mqg-size",
                "8",
            ]
        )
        assert code == 0
        assert "Top-3 answers" in capsys.readouterr().out

    def test_reader_counts_are_exposed(self, snapshot_dir):
        reader = ShardedSnapshotReader(snapshot_dir)
        assert reader.tables_opened == 0
        label = next(iter(reader.label_rows()))
        table = reader.load_table(label)
        assert len(table) == reader.label_rows()[label]
        assert reader.tables_opened == 1 and reader.opened_labels == [label]
