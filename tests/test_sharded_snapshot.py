"""Tests for the v2 sharded snapshot format (``storage/shards.py``).

Pins the contracts the mmap path must guarantee:

* a v2-mapped system answers **byte-identically** to the cold build and
  to a v1-loaded system;
* warm starts are *partial* — only the manifest is read up front, and a
  query maps only the label shards its plan actually probes (asserted
  via the reader's lazy-load counters);
* mapped tables promote copy-on-write on mutation and never write
  through to the snapshot files;
* every corruption mode — truncated shard, checksum mismatch, missing
  shard file, a v2 directory carrying a v1 magic — raises
  ``SnapshotError`` naming the offending path, for both formats.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import FreebaseLikeGenerator
from repro.exceptions import SnapshotError
from repro.graph.triples import write_triples
from repro.storage.shards import MANIFEST_NAME, ShardedSnapshotReader
from repro.storage.snapshot import GraphStore, read_snapshot_meta


@pytest.fixture(scope="module")
def dataset():
    return FreebaseLikeGenerator(seed=5, scale=0.2).generate()


@pytest.fixture(scope="module")
def config():
    return GQBEConfig(mqg_size=8, k_prime=25, max_join_rows=100_000)


@pytest.fixture(scope="module")
def snapshot_dir(dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snap") / "freebase.snapdir"
    GraphStore.build(dataset.graph).save(directory, format="v2")
    return directory


@pytest.fixture(scope="module")
def v1_path(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "freebase.snap"
    GraphStore.build(dataset.graph).save(path)
    return path


def _answer_key(result):
    return [
        (a.rank, a.entities, a.score, a.structure_score, a.content_score)
        for a in result.answers
    ]


def _copy_snapshot_dir(source, target):
    target.mkdir()
    (target / "tables").mkdir()
    for item in source.rglob("*"):
        if item.is_file():
            destination = target / item.relative_to(source)
            destination.write_bytes(item.read_bytes())
    return target


class TestRoundTrip:
    def test_byte_identical_to_cold_and_v1(
        self, dataset, config, snapshot_dir, v1_path
    ):
        cold = GQBE(dataset.graph, config=config)
        warm_v1 = GQBE(config=config, graph_store=GraphStore.load(v1_path))
        warm_v2 = GQBE(config=config, graph_store=GraphStore.load(snapshot_dir))
        for table_name in dataset.table_names()[:2]:
            query_tuple = tuple(dataset.table(table_name)[0])
            reference = _answer_key(cold.query(query_tuple, k=10))
            assert _answer_key(warm_v1.query(query_tuple, k=10)) == reference
            assert _answer_key(warm_v2.query(query_tuple, k=10)) == reference

    def test_shape_flags_and_meta(self, dataset, snapshot_dir):
        loaded = GraphStore.load(snapshot_dir)
        assert loaded.columnar and loaded.intern_entities
        meta = read_snapshot_meta(snapshot_dir)
        assert meta["num_edges"] == dataset.graph.num_edges
        assert meta["num_labels"] == dataset.graph.num_labels
        # Shape questions are answered from the manifest without opening
        # a single shard.
        assert loaded.store.num_rows == dataset.graph.num_edges
        assert loaded.store.num_tables == dataset.graph.num_labels
        assert loaded.lazy_report()["tables_opened"] == 0

    def test_v2_refuses_rows_engine(self, dataset, tmp_path):
        bundle = GraphStore.build(dataset.graph, columnar=False)
        with pytest.raises(SnapshotError, match="columnar"):
            bundle.save(tmp_path / "rows.snapdir", format="v2")

    def test_unknown_format_rejected(self, dataset, tmp_path):
        bundle = GraphStore.build(dataset.graph)
        with pytest.raises(SnapshotError, match="unknown snapshot format"):
            bundle.save(tmp_path / "x.snap", format="v3")

    def test_v2_resaves_as_v1(self, dataset, config, snapshot_dir, tmp_path):
        """A mapped bundle can be re-serialized self-contained (no mmap
        handles leak into the pickle)."""
        mapped = GraphStore.load(snapshot_dir)
        resaved = tmp_path / "resaved.snap"
        mapped.save(resaved)
        system = GQBE.from_snapshot(resaved, config=config)
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        reference = GQBE(config=config, graph_store=GraphStore.load(snapshot_dir))
        assert _answer_key(system.query(query_tuple, k=5)) == _answer_key(
            reference.query(query_tuple, k=5)
        )


class TestLazyLoading:
    def test_query_maps_only_probed_shards(self, dataset, config, snapshot_dir):
        store_bundle = GraphStore.load(snapshot_dir)
        system = GQBE(config=config, graph_store=store_bundle)
        assert store_bundle.lazy_report()["tables_opened"] == 0
        query_tuple = tuple(dataset.table(dataset.table_names()[0])[0])
        system.query(query_tuple, k=5)
        report = store_bundle.lazy_report()
        assert 0 < report["tables_opened"] < report["tables_total"]
        # The opened labels are real labels of the graph, and nothing
        # was opened twice.
        assert len(set(report["opened_labels"])) == report["tables_opened"]

    def test_cardinality_is_shard_free(self, snapshot_dir):
        bundle = GraphStore.load(snapshot_dir)
        store = bundle.store
        rows = {label: store.cardinality(label) for label in store.labels()}
        assert sum(rows.values()) == store.num_rows
        assert bundle.lazy_report()["tables_opened"] == 0

    def test_mapped_table_promotes_on_mutation(self, snapshot_dir):
        bundle = GraphStore.load(snapshot_dir)
        store = bundle.store
        label = next(iter(store.labels()))
        table = store.table(label)
        assert table.is_mapped
        before_rows = table.rows()
        shard_bytes = {
            path: path.read_bytes()
            for path in (snapshot_dir / "tables").iterdir()
        }
        table.add_row(999_999, 999_998)
        assert not table.is_mapped
        assert table.rows() == before_rows + [(999_999, 999_998)]
        assert table.has_row(999_999, 999_998)
        # Copy-on-write: the snapshot files never change.
        for path, original in shard_bytes.items():
            assert path.read_bytes() == original


class TestCorruptionPaths:
    """Satellite: every corruption mode raises SnapshotError naming the
    offending path, across both formats."""

    def test_truncated_shard(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "truncated")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        entry = manifest["tables"][0]
        shard = broken / entry["file"]
        shard.write_bytes(shard.read_bytes()[:24])
        with pytest.raises(SnapshotError, match=entry["file"].split("/")[-1]):
            GraphStore.load(broken).store.table(entry["label"])

    def test_shard_checksum_mismatch(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "bitrot")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        entry = manifest["tables"][0]
        shard = broken / entry["file"]
        data = bytearray(shard.read_bytes())
        data[-1] ^= 0xFF
        shard.write_bytes(bytes(data))
        with pytest.raises(SnapshotError) as excinfo:
            GraphStore.load(broken).store.table(entry["label"])
        assert "checksum mismatch" in str(excinfo.value)
        assert entry["file"].split("/")[-1] in str(excinfo.value)

    def test_missing_shard_file(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "missing")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        entry = manifest["tables"][0]
        (broken / entry["file"]).unlink()
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(broken).store.table(entry["label"])
        assert entry["file"].split("/")[-1] in str(excinfo.value)

    def test_v2_directory_with_v1_magic(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "wrongmagic")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        manifest["magic"] = "GQBESNAP"  # the v1 magic
        (broken / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="not a v2 snapshot") as excinfo:
            GraphStore.load(broken)
        assert MANIFEST_NAME in str(excinfo.value)

    def test_future_manifest_version(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "future")
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        manifest["format_version"] = 99
        (broken / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format version 99"):
            GraphStore.load(broken)

    def test_manifest_not_json(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "badjson")
        (broken / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="not valid JSON"):
            GraphStore.load(broken)

    def test_directory_without_manifest(self, tmp_path):
        empty = tmp_path / "empty.snapdir"
        empty.mkdir()
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(empty)
        assert MANIFEST_NAME in str(excinfo.value)

    def test_corrupt_section(self, snapshot_dir, tmp_path):
        broken = _copy_snapshot_dir(snapshot_dir, tmp_path / "badsection")
        section = broken / "statistics.section"
        data = bytearray(section.read_bytes())
        data[0] ^= 0xFF
        section.write_bytes(bytes(data))
        bundle = GraphStore.load(broken)
        with pytest.raises(SnapshotError, match="statistics.section"):
            _ = bundle.statistics

    # --- the same satellite guarantees on the v1 single file ----------
    def test_v1_truncation_names_path(self, v1_path, tmp_path):
        data = v1_path.read_bytes()
        path = tmp_path / "truncated.snap"
        path.write_bytes(data[:-50])
        with pytest.raises(SnapshotError, match="truncated") as excinfo:
            GraphStore.load(path)
        assert path.name in str(excinfo.value)

    def test_v1_checksum_names_path(self, v1_path, tmp_path):
        data = bytearray(v1_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path = tmp_path / "corrupt.snap"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="corrupt") as excinfo:
            GraphStore.load(path)
        assert path.name in str(excinfo.value)

    def test_v1_missing_file_names_path(self, tmp_path):
        path = tmp_path / "nope.snap"
        with pytest.raises(SnapshotError, match="cannot read") as excinfo:
            GraphStore.load(path)
        assert path.name in str(excinfo.value)


class TestCLIWorkflow:
    def test_build_index_v2_then_query(self, tmp_path, capsys, figure1_graph):
        triples = tmp_path / "fig1.tsv"
        write_triples(sorted(figure1_graph.edges), triples)
        snapshot = tmp_path / "fig1.snapdir"

        assert (
            main(["build-index", str(triples), str(snapshot), "--format", "v2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "v2 sharded directory" in out
        assert (snapshot / MANIFEST_NAME).exists()

        code = main(
            [
                "query",
                "--snapshot",
                str(snapshot),
                "--tuple",
                "Jerry Yang,Yahoo!",
                "--k",
                "3",
                "--mqg-size",
                "8",
            ]
        )
        assert code == 0
        assert "Top-3 answers" in capsys.readouterr().out

    def test_reader_counts_are_exposed(self, snapshot_dir):
        reader = ShardedSnapshotReader(snapshot_dir)
        assert reader.tables_opened == 0
        label = next(iter(reader.label_rows()))
        table = reader.load_table(label)
        assert len(table) == reader.label_rows()[label]
        assert reader.tables_opened == 1 and reader.opened_labels == [label]
