"""Tests for the experiment harness, reporting helpers and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.evaluation.harness import ExperimentHarness, HarnessConfig
from repro.evaluation.reporting import format_answer_list, format_table, summarize_ratio
from repro.graph.triples import write_triples
from repro.datasets.example_graph import figure1_excerpt


@pytest.fixture(scope="module")
def harness() -> ExperimentHarness:
    """A small, fast harness shared by the tests in this module."""
    return ExperimentHarness(
        HarnessConfig(scale=0.25, mqg_size=8, k_prime=15, node_budget=400)
    )


class TestHarness:
    def test_table1_lists_all_queries(self, harness):
        rows = harness.table1_workload_summary()
        assert len(rows) == 28
        assert all(row["table_size"] >= 1 for row in rows)

    def test_table2_case_study_returns_topk(self, harness):
        results = harness.table2_case_study(query_ids=("F18",), k=3)
        assert set(results) == {"F18"}
        assert 1 <= len(results["F18"]) <= 3

    def test_figure13_gqbe_beats_ness(self, harness):
        rows = harness.figure13_accuracy(k_values=(10,))
        row = rows[0]
        assert row["gqbe_p_at_k"] >= row["ness_p_at_k"]
        assert row["gqbe_ndcg"] >= row["ness_ndcg"]
        assert 0.0 <= row["gqbe_p_at_k"] <= 1.0

    def test_table3_has_all_dbpedia_queries(self, harness):
        rows = harness.table3_dbpedia_accuracy(k=10)
        assert [row["query"] for row in rows] == [f"D{i}" for i in range(1, 9)]
        assert all(0.0 <= row["p_at_k"] <= 1.0 for row in rows)

    def test_table4_pcc_values_in_range(self, harness):
        rows = harness.table4_user_study(k=20)
        assert len(rows) == 20
        for row in rows:
            assert row["pcc"] is None or -1.0 <= row["pcc"] <= 1.0

    def test_table5_multi_tuple_columns(self, harness):
        rows = harness.table5_multi_tuple(query_ids=("F18",), k=10)
        row = rows[0]
        for column in ("tuple1_p_at_k", "tuple2_p_at_k", "combined12_p_at_k", "combined123_p_at_k"):
            assert 0.0 <= row[column] <= 1.0

    def test_figure14_15_rows(self, harness):
        rows = harness.figure14_15_efficiency(k=5)
        assert len(rows) == 20
        for row in rows:
            assert row["gqbe_nodes_evaluated"] >= 1
            assert row["baseline_nodes_evaluated"] >= 1
            assert row["gqbe_seconds"] >= 0.0

    def test_table6_fig16_rows(self, harness):
        rows = harness.table6_fig16_multituple_efficiency(query_ids=("F18", "F16"), k=5)
        assert len(rows) == 2
        for row in rows:
            assert row["mqg1_seconds"] >= 0.0
            assert row["merge_seconds"] >= 0.0
            assert row["combined_processing_seconds"] >= 0.0

    def test_unknown_dataset_rejected(self, harness):
        with pytest.raises(ValueError):
            harness.run_gqbe("wikidata", "F1")


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "longer"}]
        text = format_table(rows, title="T")
        assert "T" in text
        assert "1.235" in text
        assert text.count("\n") >= 3

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="T")

    def test_format_table_renders_none_and_tuples(self):
        text = format_table([{"pcc": None, "tuple": ("a", "b")}])
        assert "undefined" in text
        assert "<a, b>" in text

    def test_format_answer_list(self):
        text = format_answer_list("F1", [("a", "b"), ("c", "d")])
        assert text.startswith("F1:")
        assert "1. <a, b>" in text

    def test_summarize_ratio(self):
        assert "2.00x" in summarize_ratio("speedup", 2.0, 1.0)
        assert "zero" in summarize_ratio("speedup", 1.0, 0.0)


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["query", "graph.tsv", "--tuple", "a,b"])
        assert args.command == "query"

    def test_query_command_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "fig1.tsv"
        write_triples(sorted(figure1_excerpt().edges), path)
        code = main(
            ["query", str(path), "--tuple", "Jerry Yang,Yahoo!", "--k", "3", "--mqg-size", "8"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Top-3 answers" in output
        assert "MQG edges" in output

    def test_generate_command(self, tmp_path, capsys):
        out = tmp_path / "synthetic.tsv"
        code = main(["generate", "freebase", str(out), "--scale", "0.2", "--seed", "3"])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_experiment_command_table1(self, capsys):
        code = main(["experiment", "table1", "--scale", "0.2"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out
