"""Tests for the best-first lattice exploration and the breadth-first baseline."""

from __future__ import annotations

import pytest

from repro.baselines.breadth_first import BreadthFirstExplorer
from repro.exceptions import LatticeError
from repro.lattice.exploration import BestFirstExplorer
from repro.lattice.query_graph import LatticeSpace


@pytest.fixture(scope="module")
def jerry_space(figure1_system):
    mqg = figure1_system.discover_query_graph(("Jerry Yang", "Yahoo!"))
    return LatticeSpace(mqg)


class TestBestFirstExplorer:
    def test_finds_expected_founders(self, jerry_space, figure1_store, figure1_truth):
        explorer = BestFirstExplorer(
            jerry_space,
            figure1_store,
            k=5,
            excluded_tuples={("Jerry Yang", "Yahoo!")},
        )
        result = explorer.run()
        answers = result.answer_tuples()
        for expected in figure1_truth:
            assert expected in answers

    def test_query_tuple_itself_is_excluded(self, jerry_space, figure1_store):
        explorer = BestFirstExplorer(
            jerry_space,
            figure1_store,
            k=10,
            excluded_tuples={("Jerry Yang", "Yahoo!")},
        )
        result = explorer.run()
        assert ("Jerry Yang", "Yahoo!") not in result.answer_tuples()

    def test_scores_are_monotone_in_rank(self, jerry_space, figure1_store):
        result = BestFirstExplorer(jerry_space, figure1_store, k=10).run()
        scores = [answer.score for answer in result.answers]
        assert scores == sorted(scores, reverse=True)

    def test_answer_scores_bounded_by_full_mqg(self, jerry_space, figure1_store):
        result = BestFirstExplorer(jerry_space, figure1_store, k=10).run()
        max_possible = jerry_space.weight_of_mask(jerry_space.full_mask)
        for answer in result.answers:
            assert answer.structure_score <= max_possible + 1e-9
            assert answer.score >= answer.structure_score

    def test_statistics_populated(self, jerry_space, figure1_store):
        result = BestFirstExplorer(jerry_space, figure1_store, k=5).run()
        stats = result.statistics
        assert stats.nodes_evaluated > 0
        assert stats.answers_found >= len(result.answers)
        assert stats.elapsed_seconds >= 0.0

    def test_k_limits_result_size(self, jerry_space, figure1_store):
        result = BestFirstExplorer(jerry_space, figure1_store, k=2).run()
        assert len(result.answers) <= 2

    def test_invalid_k_rejected(self, jerry_space, figure1_store):
        with pytest.raises(LatticeError):
            BestFirstExplorer(jerry_space, figure1_store, k=0)

    def test_node_budget_respected(self, jerry_space, figure1_store):
        result = BestFirstExplorer(
            jerry_space, figure1_store, k=5, node_budget=3
        ).run()
        assert result.statistics.nodes_evaluated <= 3
        assert result.statistics.node_budget_exhausted

    def test_content_score_rewards_identical_nodes(self, jerry_space, figure1_store):
        result = BestFirstExplorer(
            jerry_space, figure1_store, k=10, excluded_tuples={("Jerry Yang", "Yahoo!")}
        ).run()
        by_tuple = {answer.entities: answer for answer in result.answers}
        # David Filo shares Stanford, Palo Alto-like context and the company
        # Yahoo! itself with the query tuple, so his content score must be
        # strictly positive and his full score the highest.
        filo = by_tuple.get(("David Filo", "Yahoo!"))
        assert filo is not None
        assert filo.content_score > 0
        assert result.answers[0].entities == ("David Filo", "Yahoo!")


class TestAgainstBreadthFirstBaseline:
    def test_same_answer_set_as_baseline(self, jerry_space, figure1_store):
        """Best-first pruning must not lose answers the baseline finds."""
        best_first = BestFirstExplorer(
            jerry_space, figure1_store, k=10, excluded_tuples={("Jerry Yang", "Yahoo!")}
        ).run()
        baseline = BreadthFirstExplorer(
            jerry_space, figure1_store, k=10, excluded_tuples={("Jerry Yang", "Yahoo!")}
        ).run()
        assert set(best_first.answer_tuples()) == set(baseline.answer_tuples())

    def test_structure_scores_agree_with_baseline(self, jerry_space, figure1_store):
        best_first = BestFirstExplorer(jerry_space, figure1_store, k=10).run()
        baseline = BreadthFirstExplorer(jerry_space, figure1_store, k=10).run()
        best_by_tuple = {a.entities: a.structure_score for a in best_first.answers}
        base_by_tuple = {a.entities: a.structure_score for a in baseline.answers}
        for entities in set(best_by_tuple) & set(base_by_tuple):
            assert best_by_tuple[entities] == pytest.approx(base_by_tuple[entities])

    def test_best_first_never_evaluates_more_nodes(self, jerry_space, figure1_store):
        best_first = BestFirstExplorer(jerry_space, figure1_store, k=5).run()
        baseline = BreadthFirstExplorer(jerry_space, figure1_store, k=5).run()
        assert (
            best_first.statistics.nodes_evaluated
            <= baseline.statistics.nodes_evaluated
        )

    def test_baseline_statistics(self, jerry_space, figure1_store):
        baseline = BreadthFirstExplorer(jerry_space, figure1_store, k=5).run()
        assert baseline.statistics.nodes_evaluated > 0
        assert baseline.statistics.answers_found > 0

    def test_baseline_invalid_k_rejected(self, jerry_space, figure1_store):
        with pytest.raises(LatticeError):
            BreadthFirstExplorer(jerry_space, figure1_store, k=0)

    def test_baseline_node_budget(self, jerry_space, figure1_store):
        result = BreadthFirstExplorer(
            jerry_space, figure1_store, k=5, node_budget=2
        ).run()
        assert result.statistics.nodes_evaluated <= 2
        assert result.statistics.node_budget_exhausted
