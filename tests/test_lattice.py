"""Unit tests for the lattice space, minimal query trees and scoring."""

from __future__ import annotations

import pytest

from repro.discovery.mqg import MaximalQueryGraph
from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.lattice.minimal_trees import minimal_query_trees
from repro.lattice.query_graph import LatticeSpace
from repro.lattice.scoring import (
    answer_graph_score,
    content_score,
    match_credit,
    structure_score,
)


def _make_mqg() -> MaximalQueryGraph:
    """A small hand-built MQG with query entities q1, q2.

    Edges (weights in parentheses):
      q1 --founded(3.0)--> q2
      q1 --lived(1.0)--> city
      q2 --hq(2.0)--> city
      q1 --edu(0.5)--> uni
      q2 --industry(0.25)--> tech
    """
    graph = KnowledgeGraph()
    edges = {
        Edge("q1", "founded", "q2"): 3.0,
        Edge("q1", "lived", "city"): 1.0,
        Edge("q2", "hq", "city"): 2.0,
        Edge("q1", "edu", "uni"): 0.5,
        Edge("q2", "industry", "tech"): 0.25,
    }
    for edge in edges:
        graph.add_edge(*edge)
    core = frozenset(
        {
            Edge("q1", "founded", "q2"),
            Edge("q1", "lived", "city"),
            Edge("q2", "hq", "city"),
        }
    )
    return MaximalQueryGraph(
        graph=graph,
        query_tuple=("q1", "q2"),
        edge_weights=edges,
        core_edges=core,
    )


@pytest.fixture()
def space() -> LatticeSpace:
    return LatticeSpace(_make_mqg())


class TestLatticeSpace:
    def test_full_mask_covers_all_edges(self, space):
        assert space.num_edges == 5
        assert bin(space.full_mask).count("1") == 5

    def test_mask_roundtrip(self, space):
        edges = [Edge("q1", "founded", "q2"), Edge("q2", "hq", "city")]
        mask = space.mask_of(edges)
        assert set(space.edges_of(mask)) == set(edges)

    def test_mask_of_foreign_edge_raises(self, space):
        with pytest.raises(LatticeError):
            space.mask_of([Edge("a", "nope", "b")])

    def test_structure_score_is_total_weight(self, space):
        mask = space.mask_of([Edge("q1", "founded", "q2"), Edge("q2", "hq", "city")])
        assert space.weight_of_mask(mask) == pytest.approx(5.0)
        assert structure_score(space, space.full_mask) == pytest.approx(6.75)

    def test_validity_requires_query_entities_and_connectivity(self, space):
        founded = space.mask_of([Edge("q1", "founded", "q2")])
        assert space.is_valid_query_graph(founded)
        only_city = space.mask_of([Edge("q2", "hq", "city")])
        assert not space.is_valid_query_graph(only_city)  # misses q1
        disconnected = space.mask_of(
            [Edge("q1", "edu", "uni"), Edge("q2", "industry", "tech")]
        )
        assert not space.is_valid_query_graph(disconnected)
        assert not space.is_valid_query_graph(0)

    def test_parents_add_one_touching_edge(self, space):
        founded = space.mask_of([Edge("q1", "founded", "q2")])
        parents = space.parents_of(founded)
        assert all(bin(p).count("1") == 2 for p in parents)
        assert len(parents) == 4  # every other edge touches q1 or q2

    def test_children_remove_one_edge_keeping_validity(self, space):
        mask = space.mask_of(
            [
                Edge("q1", "founded", "q2"),
                Edge("q1", "lived", "city"),
                Edge("q2", "hq", "city"),
            ]
        )
        children = space.children_of(mask)
        # Removing 'founded' keeps q1-city-q2 connected; removing 'lived' or
        # 'hq' also keeps the founded edge connecting both entities.
        assert len(children) == 3

    def test_connected_component_mask(self, space):
        mask = space.mask_of(
            [Edge("q1", "founded", "q2"), Edge("q2", "industry", "tech")]
        )
        assert space.connected_component_mask(mask) == mask
        disconnected = space.mask_of(
            [Edge("q1", "edu", "uni"), Edge("q2", "industry", "tech")]
        )
        assert space.connected_component_mask(disconnected) == 0

    def test_query_graph_handle(self, space):
        qg = space.query_graph(space.full_mask)
        assert qg.num_edges == 5
        assert qg.is_valid()
        assert qg.nodes == {"q1", "q2", "city", "uni", "tech"}
        smaller = space.query_graph(space.mask_of([Edge("q1", "founded", "q2")]))
        assert qg.subsumes(smaller)
        assert not smaller.subsumes(qg)

    def test_empty_mqg_rejected(self):
        graph = KnowledgeGraph()
        graph.add_node("q1")
        mqg = MaximalQueryGraph(
            graph=graph, query_tuple=("q1",), edge_weights={}, core_edges=frozenset()
        )
        with pytest.raises(LatticeError):
            LatticeSpace(mqg)


class TestMinimalQueryTrees:
    def test_leaves_are_valid_and_minimal(self, space):
        leaves = minimal_query_trees(space)
        assert leaves
        for leaf in leaves:
            assert space.is_valid_query_graph(leaf)
            # Minimality: no child of a leaf is a valid query graph.
            assert space.children_of(leaf) == []

    def test_expected_leaves_for_two_entity_mqg(self, space):
        leaves = minimal_query_trees(space)
        founded = space.mask_of([Edge("q1", "founded", "q2")])
        via_city = space.mask_of(
            [Edge("q1", "lived", "city"), Edge("q2", "hq", "city")]
        )
        assert founded in leaves
        assert via_city in leaves
        assert len(leaves) == 2

    def test_single_entity_leaves_are_incident_edges(self):
        graph = KnowledgeGraph()
        edges = {
            Edge("q", "a", "x"): 1.0,
            Edge("q", "b", "y"): 1.0,
            Edge("y", "c", "z"): 1.0,
        }
        for edge in edges:
            graph.add_edge(*edge)
        mqg = MaximalQueryGraph(
            graph=graph,
            query_tuple=("q",),
            edge_weights=edges,
            core_edges=frozenset(),
        )
        space = LatticeSpace(mqg)
        leaves = minimal_query_trees(space)
        assert len(leaves) == 2
        for leaf in leaves:
            (edge,) = space.edges_of(leaf)
            assert edge.touches("q")


class TestScoring:
    def test_match_credit_cases(self, space):
        edge = Edge("q1", "founded", "q2")
        weight = 3.0
        # |E(q1)| = 3 and |E(q2)| = 3 in the MQG.
        assert match_credit(space, edge, True, False) == pytest.approx(weight / 3)
        assert match_credit(space, edge, False, True) == pytest.approx(weight / 3)
        assert match_credit(space, edge, True, True) == pytest.approx(weight / 3)
        assert match_credit(space, edge, False, False) == 0.0

    def test_content_score_counts_identical_nodes_only(self, space):
        edges = space.edges_of(space.full_mask)
        no_match = {"q1": "ann", "q2": "acme", "city": "paris", "uni": "mit", "tech": "ai"}
        assert content_score(space, edges, no_match) == 0.0
        city_match = dict(no_match, city="city")
        expected = 1.0 / min(3, 2) + 2.0 / min(3, 2)  # lived + hq edges, |E(city)|=2
        assert content_score(space, edges, city_match) == pytest.approx(expected)

    def test_answer_graph_score_adds_structure_and_content(self, space):
        mask = space.mask_of([Edge("q1", "founded", "q2"), Edge("q2", "hq", "city")])
        binding = {"q1": "ann", "q2": "acme", "city": "city"}
        score = answer_graph_score(space, mask, binding)
        assert score == pytest.approx(5.0 + 2.0 / 2)

    def test_structure_score_monotone_in_subsumption(self, space):
        small = space.mask_of([Edge("q1", "founded", "q2")])
        large = space.mask_of(
            [Edge("q1", "founded", "q2"), Edge("q1", "edu", "uni")]
        )
        # Property 2 of the paper.
        assert structure_score(space, small) < structure_score(space, large)
