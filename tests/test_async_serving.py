"""Async-frontend tests: admission control, limits, metrics, deadlines.

Pins the serving-tier acceptance criteria for the asyncio frontend:

* answers are byte-identical to the threaded frontend (and to a direct
  ``GQBE.query`` call);
* a shed request (``429`` past the high-water mark) carries
  ``Retry-After`` and never touches the batcher;
* rate-limited clients recover as their token bucket refills;
* a deadline expiry answers ``504`` while the cache generation guard
  stays intact — the abandoned result can never be served later;
* the TTL answer cache never serves a stale generation after
  ``POST /admin/reload``;
* ``GET /metrics`` renders a parseable Prometheus text exposition whose
  counters reconcile with the requests the test itself issued.

The admission-control defaults live on ``GQBEConfig``
(``serve_high_water``, ``serve_deadline_ms``, ``serve_rate_limit_rps``,
``serve_rate_limit_burst``, ``serve_cache_ttl_seconds``); the CLI wiring
tests at the bottom pin that each flag defaults from its config field.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.exceptions import EvaluationError
from repro.serving.async_server import AsyncGQBEServer
from repro.serving.limits import (
    AdmissionGate,
    RateLimiter,
    TokenBucket,
    TTLAnswerCache,
    retry_after_header,
)
from repro.serving.metrics import (
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.serving.server import GQBEServer
from repro.storage.snapshot import GraphStore


class FakeClock:
    """A manually advanced monotonic clock for limit/TTL tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket / RateLimiter
# ----------------------------------------------------------------------
def test_token_bucket_starts_full_and_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.allow() for _ in range(3)] == [True, True, True]
    assert not bucket.allow()
    # Empty bucket at 2 tokens/s: one full token accrues in 0.5s.
    assert bucket.retry_after_seconds() == pytest.approx(0.5)
    clock.advance(0.5)
    assert bucket.allow()
    assert not bucket.allow()
    # Refill caps at burst: a long idle stretch grants at most 3 tokens.
    clock.advance(3600)
    assert [bucket.allow() for _ in range(4)] == [True, True, True, False]


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError, match="rate"):
        TokenBucket(rate=0, burst=1)
    with pytest.raises(ValueError, match="burst"):
        TokenBucket(rate=1, burst=0)


def test_rate_limiter_check_and_refill():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=2, clock=clock)
    assert limiter.check("alice") is None
    assert limiter.check("alice") is None
    retry_after = limiter.check("alice")
    assert retry_after is not None and retry_after >= 1.0
    # Other clients have their own buckets.
    assert limiter.check("bob") is None
    clock.advance(1.0)
    assert limiter.check("alice") is None
    assert limiter.stats()["rejections"] == 1
    assert limiter.stats()["tracked_clients"] == 2


def test_rate_limiter_evicts_least_recently_used_bucket():
    clock = FakeClock()
    limiter = RateLimiter(rate=0.001, burst=1, max_clients=2, clock=clock)
    assert limiter.check("a") is None  # a's bucket now empty
    assert limiter.check("b") is None
    assert limiter.check("c") is None  # table full: "a" (LRU) dropped
    assert len(limiter._buckets) == 2
    # A returning evicted client starts from a fresh, full bucket: the
    # bound errs toward admitting, never toward starving.
    assert limiter.check("a") is None
    # "c" kept its bucket through the churn — and it is empty.
    assert limiter.check("c") is not None


# ----------------------------------------------------------------------
# AdmissionGate / Retry-After
# ----------------------------------------------------------------------
def test_admission_gate_bounds_in_flight_requests():
    gate = AdmissionGate(high_water=2)
    assert gate.try_enter()
    assert gate.try_enter()
    assert not gate.try_enter()
    assert gate.stats() == {
        "high_water": 2,
        "depth": 2,
        "admitted": 2,
        "rejections": 1,
    }
    gate.leave()
    assert gate.try_enter()
    gate.leave()
    gate.leave()
    with pytest.raises(RuntimeError, match="without a matching enter"):
        gate.leave()


def test_retry_after_header_is_a_positive_integer_rounded_up():
    assert retry_after_header(0.2) == "1"
    assert retry_after_header(1.0) == "1"
    assert retry_after_header(1.01) == "2"
    assert retry_after_header(5) == "5"


# ----------------------------------------------------------------------
# TTLAnswerCache
# ----------------------------------------------------------------------
def test_ttl_cache_expires_entries_on_access():
    clock = FakeClock()
    cache = TTLAnswerCache(capacity=8, ttl_seconds=10.0, clock=clock)
    assert cache.put("key", {"answers": []}, cache.generation)
    assert cache.get("key") == {"answers": []}
    clock.advance(10.5)
    assert cache.get("key") is None
    assert cache.expirations == 1
    assert len(cache) == 0


def test_ttl_cache_none_ttl_is_pure_lru_passthrough():
    cache = TTLAnswerCache(capacity=2, ttl_seconds=None)
    cache.put("a", 1, cache.generation)
    assert cache.get("a") == 1  # unwrapped: byte-compatible with parent
    cache.put("b", 2, cache.generation)
    assert cache.get("a") == 1  # refresh "a": now "b" is least recent
    cache.put("c", 3, cache.generation)
    assert cache.get("b") is None and cache.evictions == 1


def test_ttl_cache_keeps_generation_guard():
    clock = FakeClock()
    cache = TTLAnswerCache(capacity=8, ttl_seconds=60.0, clock=clock)
    old_generation = cache.generation
    cache.invalidate()
    assert not cache.put("key", "stale", old_generation)
    assert cache.get("key") is None
    assert cache.stale_puts == 1
    assert cache.put("key", "fresh", cache.generation)
    assert cache.get("key") == "fresh"


def test_ttl_cache_rejects_non_positive_ttl():
    with pytest.raises(ValueError, match="ttl_seconds"):
        TTLAnswerCache(capacity=8, ttl_seconds=0)


# ----------------------------------------------------------------------
# Metrics: exposition format and parse round-trip
# ----------------------------------------------------------------------
def test_metrics_exposition_format():
    registry = MetricsRegistry()
    requests = registry.counter("demo_requests_total", "Requests.", ("code",))
    registry.gauge("demo_depth", "Depth.", callback=lambda: 3)
    latency = registry.histogram(
        "demo_seconds", "Latency.", buckets=(0.1, 1.0), label_names=("stage",)
    )
    requests.inc(code="200")
    requests.inc(code="200")
    requests.inc(code="429")
    latency.observe(0.05, stage="total")
    latency.observe(2.0, stage="total")

    text = registry.render()
    lines = text.splitlines()
    assert "# HELP demo_requests_total Requests." in lines
    assert "# TYPE demo_requests_total counter" in lines
    assert 'demo_requests_total{code="200"} 2' in lines
    assert 'demo_requests_total{code="429"} 1' in lines
    assert "# TYPE demo_depth gauge" in lines
    assert "demo_depth 3" in lines  # integers render without ".0"
    assert "# TYPE demo_seconds histogram" in lines
    assert 'demo_seconds_bucket{le="0.1",stage="total"} 1' in lines
    assert 'demo_seconds_bucket{le="1",stage="total"} 1' in lines
    assert 'demo_seconds_bucket{le="+Inf",stage="total"} 2' in lines
    assert 'demo_seconds_sum{stage="total"} 2.05' in lines
    assert 'demo_seconds_count{stage="total"} 2' in lines
    assert text.endswith("\n")
    assert "0.0.4" in registry.content_type


def test_metrics_parse_roundtrip():
    registry = MetricsRegistry()
    counter = registry.counter("rt_total", "Round trip.", ("path", "code"))
    counter.inc(path="/query", code="200")
    counter.inc(3, path='/que"ry\n', code="429")
    histogram = registry.histogram("rt_seconds", "Latency.", buckets=(0.5,))
    histogram.observe(0.25)

    parsed = parse_prometheus_text(registry.render())
    assert parsed[("rt_total", (("code", "200"), ("path", "/query")))] == 1
    assert parsed[("rt_total", (("code", "429"), ("path", '/que"ry\n')))] == 3
    assert parsed[("rt_seconds_bucket", (("le", "0.5"),))] == 1
    assert parsed[("rt_seconds_bucket", (("le", "+Inf"),))] == 1
    assert parsed[("rt_seconds_sum", ())] == 0.25
    assert parsed[("rt_seconds_count", ())] == 1


def test_metrics_registry_guards():
    registry = MetricsRegistry()
    counter = registry.counter("guard_total", "Guard.")
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("guard_total", "Duplicate.")
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)
    labelled = registry.counter("guard_labelled_total", "Guard.", ("path",))
    with pytest.raises(ValueError, match="takes labels"):
        labelled.inc(code="200")


# ----------------------------------------------------------------------
# HTTP helpers (raw http.client, header-aware)
# ----------------------------------------------------------------------
def _request(server, method, path, payload=None, headers=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        parsed = (
            json.loads(raw) if "application/json" in content_type else raw.decode()
        )
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


def _post(server, path, payload, headers=None):
    status, _headers, body = _request(server, "POST", path, payload, headers)
    return status, body


def _get(server, path, headers=None):
    status, _headers, body = _request(server, "GET", path, headers=headers)
    return status, body


def _scrape(server):
    status, headers, text = _request(server, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    return parse_prometheus_text(text)


@pytest.fixture(scope="module")
def async_server(figure1_graph):
    server = AsyncGQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        batch_window_seconds=0.002,
        cache_size=64,
    ).start()
    yield server
    server.stop()


# ----------------------------------------------------------------------
# Equivalence: async answers == threaded answers == direct query
# ----------------------------------------------------------------------
def test_async_answers_match_threaded_and_direct(
    async_server, figure1_graph, figure1_system
):
    payload = {"tuple": ["Jerry Yang", "Yahoo!"], "k": 5}
    status, via_async = _post(async_server, "/query", payload)
    assert status == 200 and via_async["cached"] is False

    threaded = GQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        batch_window_seconds=0.002,
        cache_size=64,
    ).start()
    try:
        status, via_threaded = _post(threaded, "/query", payload)
    finally:
        threaded.stop()
    assert status == 200
    assert via_async["answers"] == via_threaded["answers"]

    direct = figure1_system.query(("Jerry Yang", "Yahoo!"), k=5)
    assert [tuple(a["entities"]) for a in via_async["answers"]] == [
        answer.entities for answer in direct.answers
    ]
    assert [a["score"] for a in via_async["answers"]] == [
        answer.score for answer in direct.answers
    ]


def test_async_cache_hit_bypasses_admission(async_server):
    payload = {"tuple": ["Jerry Yang", "Yahoo!"], "k": 7}
    _, first = _post(async_server, "/query", payload)
    assert first["cached"] is False
    admitted_before = async_server._gate.admitted
    _, second = _post(async_server, "/query", payload)
    assert second["cached"] is True
    assert second["answers"] == first["answers"]
    # The hit never held an admission slot.
    assert async_server._gate.admitted == admitted_before


def test_async_error_surface(async_server):
    assert _get(async_server, "/nope")[0] == 404
    status, _headers, body = _request(async_server, "PUT", "/query", {"k": 1})
    assert status == 405
    connection = http.client.HTTPConnection(
        async_server.host, async_server.port, timeout=30
    )
    try:
        connection.request("POST", "/query", body=b"{not json")
        assert connection.getresponse().status == 400
    finally:
        connection.close()
    status, body = _post(
        async_server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": "ten"}
    )
    assert status == 400 and "k" in body["error"]
    oversized = async_server.max_body_bytes + 1
    connection = http.client.HTTPConnection(
        async_server.host, async_server.port, timeout=30
    )
    try:
        connection.putrequest("POST", "/query")
        connection.putheader("Content-Length", str(oversized))
        connection.endheaders()
        assert connection.getresponse().status == 413
    finally:
        connection.close()


def test_async_stats_and_metrics_endpoints(async_server):
    status, stats = _get(async_server, "/stats")
    assert status == 200
    assert stats["frontend"] == "async"
    assert stats["admission"]["high_water"] == async_server.high_water

    before = _scrape(async_server)
    _post(async_server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": 4})
    after = _scrape(async_server)

    query_200 = ("gqbe_http_requests_total", (("code", "200"), ("path", "/query")))
    assert after[query_200] == before.get(query_200, 0) + 1
    assert after[("gqbe_queue_high_water", ())] == async_server.high_water
    assert after[("gqbe_queue_depth", ())] == 0
    assert after[("gqbe_snapshot_generation", ())] == async_server._cache.generation
    # Every engine execution lands in the batch-size histogram.
    count_key = ("gqbe_batch_size_count", ())
    assert after[count_key] >= before.get(count_key, 0) + 1
    total_key = ("gqbe_stage_seconds_count", (("stage", "total"),))
    assert after[total_key] > before.get(total_key, 0)


# ----------------------------------------------------------------------
# Admission gate over HTTP: 429 never touches the batcher
# ----------------------------------------------------------------------
def test_async_queue_full_429_never_touches_batcher(figure1_graph):
    server = AsyncGQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        high_water=1,
        cache_size=0,
        batch_window_seconds=0.001,
    ).start()
    inner = server._batcher._runner
    try:
        release = threading.Event()

        def slow_runner(tuples, k, k_prime):
            release.wait(timeout=30)
            return inner(tuples, k, k_prime)

        server._batcher._runner = slow_runner
        first: dict = {}

        def occupy_slot():
            first["response"] = _post(
                server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
            )

        holder = threading.Thread(target=occupy_slot)
        holder.start()
        deadline = time.monotonic() + 10
        while server._gate.depth < 1:
            assert time.monotonic() < deadline, "first request never admitted"
            time.sleep(0.005)

        batcher_before = server._batcher.stats()
        status, headers, body = _request(
            server, "POST", "/query", {"tuple": ["Sergey Brin", "Google"], "k": 3}
        )
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "capacity" in body["error"]
        # The shed request was refused before the engine: no new batcher
        # submissions, no new batches.
        assert server._batcher.stats() == batcher_before
        shed = _scrape(server)[
            ("gqbe_http_shed_total", (("reason", "queue_full"),))
        ]
        assert shed == 1

        release.set()
        holder.join(timeout=30)
        assert first["response"][0] == 200
    finally:
        server._batcher._runner = inner
        server.stop()


# ----------------------------------------------------------------------
# Rate limiting over HTTP
# ----------------------------------------------------------------------
def test_async_rate_limit_sheds_then_recovers(figure1_graph):
    server = AsyncGQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        rate_limit_rps=2.0,
        rate_limit_burst=2,
        cache_size=64,
        batch_window_seconds=0.001,
    ).start()
    try:
        payload = {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
        assert _post(server, "/query", payload)[0] == 200
        assert _post(server, "/query", payload)[0] == 200
        status, headers, body = _request(server, "POST", "/query", payload)
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "rate limit" in body["error"]
        shed = _scrape(server)[
            ("gqbe_http_shed_total", (("reason", "rate_limit"),))
        ]
        assert shed >= 1
        # The bucket refills at 2 tokens/s: after ~0.6s one is back.
        time.sleep(0.6)
        assert _post(server, "/query", payload)[0] == 200
        assert server.stats()["rate_limit"]["rejections"] >= 1
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Auth
# ----------------------------------------------------------------------
def test_async_api_key_allowlist(figure1_graph):
    server = AsyncGQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        api_keys=["secret-key"],
        cache_size=0,
        batch_window_seconds=0.001,
    ).start()
    try:
        payload = {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
        assert _post(server, "/query", payload)[0] == 401
        assert (
            _post(
                server,
                "/query",
                payload,
                headers={"Authorization": "Bearer wrong"},
            )[0]
            == 401
        )
        status, body = _post(
            server,
            "/query",
            payload,
            headers={"Authorization": "Bearer secret-key"},
        )
        assert status == 200 and body["answers"]
        # Reloads are behind the same allowlist.
        assert _post(server, "/admin/reload", {"snapshot": "x"})[0] == 401
        shed = _scrape(server)[
            ("gqbe_http_shed_total", (("reason", "unauthorized"),))
        ]
        assert shed == 3
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Deadlines: 504 with the generation guard intact
# ----------------------------------------------------------------------
def test_async_deadline_expiry_504_generation_guard_intact(figure1_graph):
    server = AsyncGQBEServer(
        GQBE(figure1_graph, config=GQBEConfig(mqg_size=10)),
        port=0,
        deadline_ms=100,
        cache_size=64,
        batch_window_seconds=0.001,
    ).start()
    inner = server._batcher._runner
    try:
        def slow_runner(tuples, k, k_prime):
            time.sleep(0.5)
            return inner(tuples, k, k_prime)

        server._batcher._runner = slow_runner
        generation_before = server._cache.generation

        status, headers, body = _request(
            server, "POST", "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
        )
        assert status == 504
        assert "deadline" in body["error"] and "100" in body["error"]
        timeouts = _scrape(server)[
            ("gqbe_http_timeouts_total", (("kind", "deadline"),))
        ]
        assert timeouts == 1

        # The guard is intact: nothing entered the cache, the generation
        # did not move, and the admission slot was released.
        assert server._cache.generation == generation_before
        assert len(server._cache) == 0
        assert server._gate.depth == 0

        # Once the slow batch drains, the same query computes fresh —
        # the abandoned result is never served.
        server._batcher._runner = inner
        time.sleep(0.6)
        status, after = _post(
            server, "/query", {"tuple": ["Jerry Yang", "Yahoo!"], "k": 3}
        )
        assert status == 200 and after["cached"] is False
        assert after["generation"] == generation_before
    finally:
        server._batcher._runner = inner
        server.stop()


# ----------------------------------------------------------------------
# Reload: the TTL cache never serves a stale generation
# ----------------------------------------------------------------------
def _reordered_graph():
    """A graph where the Fig. 1 founder query ranks different answers."""
    from repro.graph.knowledge_graph import KnowledgeGraph

    graph = KnowledgeGraph()
    for founder, company in [
        ("Jerry Yang", "Yahoo!"),
        ("Ada Lovelace", "Analytical Engines Ltd"),
        ("Grace Hopper", "COBOL Systems"),
    ]:
        graph.add_edge(founder, "founded", company)
        graph.add_edge(founder, "profession", "Engineer")
        graph.add_edge(company, "industry", "Computing")
    return graph


def test_async_ttl_cache_never_stale_after_reload(figure1_graph, tmp_path):
    snap_a = tmp_path / "a.snap"
    snap_b = tmp_path / "b.snap"
    GraphStore.build(figure1_graph).save(snap_a)
    graph_b = _reordered_graph()
    GraphStore.build(graph_b).save(snap_b)

    server = AsyncGQBEServer.from_snapshot(
        snap_a,
        port=0,
        batch_window_seconds=0.001,
        cache_size=64,
        cache_ttl_seconds=3600.0,
    ).start()
    try:
        assert isinstance(server._cache, TTLAnswerCache)
        payload = {"tuple": ["Jerry Yang", "Yahoo!"], "k": 5}
        _, before = _post(server, "/query", payload)
        _, before_again = _post(server, "/query", payload)
        assert before_again["cached"] is True

        generation_metric = _scrape(server)[("gqbe_snapshot_generation", ())]
        status, reload_body = _post(
            server, "/admin/reload", {"snapshot": str(snap_b)}
        )
        assert status == 200 and reload_body["reloaded"] is True
        assert reload_body["generation"] > before["generation"]

        _, after = _post(server, "/query", payload)
        assert after["cached"] is False
        assert after["generation"] > before["generation"]
        expected = GQBE(graph_b).query(("Jerry Yang", "Yahoo!"), k=5)
        assert [tuple(a["entities"]) for a in after["answers"]] == [
            answer.entities for answer in expected.answers
        ]
        assert after["answers"] != before["answers"]
        assert _scrape(server)[("gqbe_snapshot_generation", ())] > generation_metric
    finally:
        server.stop()


def test_async_in_flight_result_cannot_poison_ttl_cache():
    cache = TTLAnswerCache(capacity=64, ttl_seconds=3600.0)
    generation_before = cache.generation
    cache.invalidate()  # a reload lands while the answer is computing
    assert not cache.put(("q",), {"answers": ["old"]}, generation_before)
    assert cache.get(("q",)) is None


# ----------------------------------------------------------------------
# CLI wiring: every admission flag defaults from its GQBEConfig field
# ----------------------------------------------------------------------
def test_cli_serve_admission_flags_default_from_config():
    from repro.cli import build_parser

    defaults = GQBEConfig()
    args = build_parser().parse_args(["serve", "--snapshot", "x.snap"])
    assert args.frontend == "async"
    assert args.high_water == defaults.serve_high_water == 64
    assert args.deadline_ms == defaults.serve_deadline_ms is None
    assert args.rate_limit_rps == defaults.serve_rate_limit_rps is None
    assert args.rate_limit_burst == defaults.serve_rate_limit_burst == 32
    assert args.cache_ttl_seconds == defaults.serve_cache_ttl_seconds is None
    assert args.api_keys is None

    args = build_parser().parse_args(
        [
            "serve",
            "--snapshot",
            "x.snap",
            "--frontend",
            "threaded",
            "--high-water",
            "8",
            "--deadline-ms",
            "250",
            "--rate-limit-rps",
            "5.5",
            "--rate-limit-burst",
            "4",
            "--api-key",
            "k1",
            "--api-key",
            "k2",
            "--cache-ttl-seconds",
            "30",
        ]
    )
    assert args.frontend == "threaded"
    assert args.high_water == 8
    assert args.deadline_ms == 250
    assert args.rate_limit_rps == 5.5
    assert args.rate_limit_burst == 4
    assert args.api_keys == ["k1", "k2"]
    assert args.cache_ttl_seconds == 30.0


def test_cli_bench_serve_arrival_wiring():
    from repro.cli import build_parser

    args = build_parser().parse_args(["bench-serve", "--workload", "freebase"])
    assert args.arrival == "closed" and args.rate is None
    args = build_parser().parse_args(
        ["bench-serve", "--workload", "freebase", "--arrival", "open", "--rate", "50"]
    )
    assert args.arrival == "open" and args.rate == 50.0


def test_config_validates_serve_fields():
    with pytest.raises(EvaluationError, match="serve_high_water"):
        GQBEConfig(serve_high_water=0)
    with pytest.raises(EvaluationError, match="serve_deadline_ms"):
        GQBEConfig(serve_deadline_ms=0)
    with pytest.raises(EvaluationError, match="serve_rate_limit_rps"):
        GQBEConfig(serve_rate_limit_rps=0)
    with pytest.raises(EvaluationError, match="serve_rate_limit_burst"):
        GQBEConfig(serve_rate_limit_burst=0)
    with pytest.raises(EvaluationError, match="serve_cache_ttl_seconds"):
        GQBEConfig(serve_cache_ttl_seconds=0)


def test_build_frontend_selects_by_flag(figure1_graph):
    from repro.cli import build_frontend, build_parser

    system = GQBE(figure1_graph, config=GQBEConfig(mqg_size=10))
    args = build_parser().parse_args(
        ["serve", "--snapshot", "x.snap", "--frontend", "threaded"]
    )
    server = build_frontend(system, None, args)
    try:
        assert isinstance(server, GQBEServer)
        assert not isinstance(server, AsyncGQBEServer)
    finally:
        server._batcher.close()

    args = build_parser().parse_args(
        ["serve", "--snapshot", "x.snap", "--high-water", "7", "--deadline-ms", "123"]
    )
    server = build_frontend(system, None, args)
    try:
        assert isinstance(server, AsyncGQBEServer)
        assert server.high_water == 7
        assert server.deadline_ms == 123
    finally:
        server._executor.shutdown(wait=False)
        server._batcher.close()
