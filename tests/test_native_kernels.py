"""Native kernels must be byte-identical to the pure-Python fallback.

The C extension (``repro._kernels._native``) reimplements the engine's
innermost loops; its acceptance contract is *pinned equivalence* with the
pure reference (``repro._kernels._pure``):

* per-kernel parity — each kernel, fed identical inputs (including the
  documented in-place dict/list mutations and callback firing order),
  produces identical outputs on both backends;
* end-to-end parity — ranked answers are identical across the whole
  v1 / v2 / v3 × inline / pooled matrix with ``native_kernels="on"``
  versus ``"off"`` (the same matrix ``test_pool_execution.py`` pins);
* the fallback contract — ``GQBE_FORCE_PURE=1`` forces the pure backend
  in a fresh interpreter even under ``native_kernels="on"``, and
  ``GQBEConfig.native_kernels`` validates its three modes.

Per-kernel parity tests skip when the extension is not built (the CI
fallback leg); the selection and config tests run everywhere.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import _kernels
from repro._kernels import _pure
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.workloads import build_freebase_workload
from repro.exceptions import EvaluationError
from repro.storage.snapshot import GraphStore

REPO_ROOT = Path(__file__).resolve().parent.parent

native = _kernels._probe_native()
needs_native = pytest.mark.skipif(
    native is None, reason="native extension not built (pip install -e .)"
)

_CONFIG = dict(mqg_size=8, k_prime=20, node_budget=500, max_join_rows=50_000)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide kernel binding as the session had it."""
    backend = _kernels.kernels.backend
    yield
    _kernels.select("on" if backend == "native" else "off")


# ----------------------------------------------------------------------
# per-kernel parity
# ----------------------------------------------------------------------
def _random_csr(rng, num_nodes, num_edges):
    """A random mapped graph as the four CSR int64 columns."""
    subjects = np.array(
        sorted(rng.randrange(num_nodes) for _ in range(num_edges)), dtype=np.int64
    )
    objects = np.array(
        [rng.randrange(num_nodes) for _ in range(num_edges)], dtype=np.int64
    )
    out_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(out_indptr, subjects + 1, 1)
    out_indptr = np.cumsum(out_indptr, dtype=np.int64)
    # The in-CSR re-sorts the same edges by object.
    order = np.argsort(objects, kind="stable")
    in_subjects = subjects[order]
    in_objects = objects[order]
    in_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(in_indptr, in_objects + 1, 1)
    in_indptr = np.cumsum(in_indptr, dtype=np.int64)
    return out_indptr, objects, in_indptr, in_subjects


@needs_native
class TestBFSKernels:
    @pytest.mark.parametrize("frontier_size", [1, 3, 40])
    def test_bfs_expand_parity(self, frontier_size):
        # 40 >= GATHER_MIN_FRONTIER exercises the pure gather path
        # against the native scalar loop; both must preserve the
        # per-node out-then-in first-occurrence insertion order.
        rng = random.Random(frontier_size)
        columns = _random_csr(rng, num_nodes=200, num_edges=900)
        frontier = rng.sample(range(200), frontier_size)
        pure_distances = {node: 0 for node in frontier}
        native_distances = dict(pure_distances)
        pure_next = _pure.bfs_expand(frontier, *columns, pure_distances, 1)
        native_next = native.bfs_expand(frontier, *columns, native_distances, 1)
        assert native_next == pure_next
        assert native_distances == pure_distances
        assert list(native_distances) == list(pure_distances)  # insertion order

    def test_bfs_expand_multi_depth_parity(self):
        rng = random.Random(99)
        columns = _random_csr(rng, num_nodes=300, num_edges=1200)
        pure_distances = {7: 0}
        native_distances = {7: 0}
        pure_frontier, native_frontier = [7], [7]
        for depth in (1, 2, 3):
            pure_frontier = _pure.bfs_expand(
                pure_frontier, *columns, pure_distances, depth
            )
            native_frontier = native.bfs_expand(
                native_frontier, *columns, native_distances, depth
            )
            assert native_frontier == pure_frontier, depth
        assert native_distances == pure_distances

    def test_csr_neighbors_parity(self):
        rng = random.Random(5)
        columns = _random_csr(rng, num_nodes=50, num_edges=400)
        for node in range(50):
            assert native.csr_neighbors(node, *columns) == _pure.csr_neighbors(
                node, *columns
            ), node


@needs_native
class TestProbeTailKernel:
    def _rows_and_buckets(self, rng, *, values):
        rows = [
            tuple(rng.choice(values) for _ in range(rng.randrange(1, 6)))
            for _ in range(80)
        ]
        buckets = {
            value: [rng.choice(values) for _ in range(rng.randrange(0, 4))]
            for value in values
        }
        return rows, buckets

    @pytest.mark.parametrize("injective", [True, False])
    @pytest.mark.parametrize("kind", ["ints", "strings", "mixed"])
    def test_probe_tail_parity(self, injective, kind):
        rng = random.Random(hash((injective, kind)) & 0xFFFF)
        values = {
            "ints": list(range(30)),
            "strings": [f"node{i}" for i in range(30)],
            # bools and big ints defeat the native int64 fast path;
            # parity must hold on the object-scan fallback too.
            "mixed": [0, 1, True, False, 2**70, -(2**70), "x", 3.5] + list(range(10)),
        }[kind]
        rows, buckets = self._rows_and_buckets(rng, values=values)
        bound_col = 0
        assert native.probe_tail(
            rows, buckets, bound_col, injective, -1
        ) == _pure.probe_tail(rows, buckets, bound_col, injective, -1)

    def test_probe_tail_overflow_returns_none(self):
        rows = [(1,)] * 10
        buckets = {1: [2, 3]}
        assert _pure.probe_tail(rows, buckets, 0, False, 5) is None
        assert native.probe_tail(rows, buckets, 0, False, 5) is None
        # At exactly the cap the output survives on both backends.
        assert native.probe_tail(rows, buckets, 0, False, 20) == _pure.probe_tail(
            rows, buckets, 0, False, 20
        )

    def test_probe_tail_empty_and_missing_buckets(self):
        rows = [(1, 2), (9, 9), (3, 1)]
        buckets = {1: [], 3: [7]}
        assert native.probe_tail(rows, buckets, 0, True, -1) == _pure.probe_tail(
            rows, buckets, 0, True, -1
        )

    def test_filter_pairs_parity(self):
        rng = random.Random(11)
        rows = [
            (rng.randrange(10), rng.randrange(10), rng.randrange(10))
            for _ in range(200)
        ]
        pairs = {(rng.randrange(10), rng.randrange(10)) for _ in range(30)}
        assert native.filter_pairs(rows, 0, 2, pairs) == _pure.filter_pairs(
            rows, 0, 2, pairs
        )


@needs_native
class TestAccumulateKernels:
    def test_accumulate_structure_parity_and_callback_order(self):
        rng = random.Random(21)
        answers = [f"a{i}" for i in range(40)]
        excluded = {"a3", "a17"}
        pure_records, native_records = {}, {}
        pure_calls, native_calls = [], []
        for step in range(6):
            batch = rng.sample(answers, 15)
            mask_structure = rng.random() * 10
            mask = rng.randrange(1 << 8)
            _pure.accumulate_structure(
                batch, excluded, pure_records, mask_structure, mask,
                lambda a, s: pure_calls.append((a, s)),
            )
            native.accumulate_structure(
                batch, excluded, native_records, mask_structure, mask,
                lambda a, s: native_calls.append((a, s)),
            )
        assert native_records == pure_records
        assert native_calls == pure_calls

    def test_accumulate_structure_without_callback(self):
        pure_records, native_records = {}, {}
        for records, kernel in (
            (pure_records, _pure.accumulate_structure),
            (native_records, native.accumulate_structure),
        ):
            kernel(["x", "y"], set(), records, 2.5, 3, None)
            kernel(["y", "z"], set(), records, 4.0, 5, None)
        assert native_records == pure_records

    def test_accumulate_content_parity_and_cache(self):
        rng = random.Random(34)
        answers = [f"a{i}" for i in range(20)]
        signatures = [rng.randrange(1 << 6) for _ in range(50)]
        matches = [(rng.choice(answers), rng.choice(signatures)) for _ in range(120)]

        def fresh_records():
            return {
                answer: [1.0, 1.5, 0.5, 7]
                for answer in answers
                if answer not in ("a4", "a9")  # records absent → skipped
            }

        pure_records, native_records = fresh_records(), fresh_records()
        pure_calls, native_calls = [], []

        def content_of(calls):
            def inner(signature):
                calls.append(signature)
                return signature * 0.01

            return inner

        _pure.accumulate_content(
            matches, pure_records, 3.0, 11, content_of(pure_calls)
        )
        native.accumulate_content(
            matches, native_records, 3.0, 11, content_of(native_calls)
        )
        assert native_records == pure_records
        # The per-call signature cache is part of the contract: the
        # Python callback runs once per distinct signature, in first-
        # occurrence order, on both backends.
        assert native_calls == pure_calls
        assert len(native_calls) == len(set(native_calls))


@needs_native
class TestTopKThresholdKernel:
    @pytest.mark.parametrize("k_prime", [1, 3, 25])
    def test_threshold_sequence_parity(self, k_prime):
        rng = random.Random(k_prime)
        pure_topk = _pure.TopKThreshold(k_prime)
        native_topk = native.TopKThreshold(k_prime)
        best: dict[str, float] = {}
        for _ in range(400):
            answer = f"a{rng.randrange(40)}"
            # Scores only increase per answer (the kernel's precondition).
            score = best.get(answer, 0.0) + rng.random()
            best[answer] = score
            pure_topk.note(answer, score)
            native_topk.note(answer, score)
            assert native_topk.threshold() == pure_topk.threshold()
            assert len(native_topk) == len(pure_topk)

    def test_threshold_none_below_k_prime(self):
        topk = native.TopKThreshold(3)
        topk.note("a", 1.0)
        topk.note("b", 2.0)
        assert topk.threshold() is None
        topk.note("c", 0.5)
        assert topk.threshold() == 0.5


# ----------------------------------------------------------------------
# end-to-end: the v1/v2/v3 × inline/pooled matrix, native vs fallback
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    return build_freebase_workload(seed=7, scale=0.25)


@pytest.fixture(scope="module")
def snapshots(workload, tmp_path_factory):
    root = tmp_path_factory.mktemp("kernels")
    paths = {}
    for fmt, name in (("v1", "g.snap"), ("v2", "g.snapdir"), ("v3", "g.snapdir3")):
        path = root / name
        GraphStore.build(workload.dataset.graph).save(path, format=fmt)
        paths[fmt] = path
    return paths


def _answer_key(result):
    return [
        (a.rank, a.entities, a.score, a.structure_score, a.content_score)
        for a in result.answers
    ]


@needs_native
def test_native_matches_fallback_across_formats_and_execution(
    workload, snapshots
):
    """native_kernels="on" ≡ "off" over v1/v2/v3 × inline/pooled."""
    tuples = [query.query_tuple for query in workload.queries[:6]]
    reference = None
    for fmt in ("v1", "v2", "v3"):
        for execution in ("inline", "pool"):
            if execution == "pool" and fmt == "v1":
                continue  # pooled workers require a mapped snapshot
            by_mode = {}
            for mode in ("off", "on"):
                config = GQBEConfig(
                    **_CONFIG,
                    native_kernels=mode,
                    execution=execution,
                    pool_workers=2 if execution == "pool" else None,
                )
                system = GQBE.from_snapshot(snapshots[fmt], config=config)
                try:
                    results = system.query_batch(tuples, k=5)
                    by_mode[mode] = [_answer_key(r) for r in results]
                finally:
                    system.close()
            cell = f"{fmt}/{execution}"
            assert by_mode["on"] == by_mode["off"], cell
            if reference is None:
                reference = by_mode["off"]
            assert by_mode["off"] == reference, cell


# ----------------------------------------------------------------------
# backend selection + config surface
# ----------------------------------------------------------------------
class TestBackendSelection:
    @needs_native
    def test_modes_resolve(self, monkeypatch):
        monkeypatch.delenv("GQBE_FORCE_PURE", raising=False)
        monkeypatch.delenv("GQBE_NATIVE_KERNELS", raising=False)
        assert _kernels.resolve_backend("off") == "pure"
        assert _kernels.resolve_backend("on") == "native"
        assert _kernels.resolve_backend("auto") == "native"

    @needs_native
    def test_env_auto_override(self, monkeypatch):
        monkeypatch.delenv("GQBE_FORCE_PURE", raising=False)
        monkeypatch.setenv("GQBE_NATIVE_KERNELS", "off")
        assert _kernels.resolve_backend("auto") == "pure"
        # Explicit modes are not overridden by the auto-resolution env.
        assert _kernels.resolve_backend("on") == "native"

    def test_force_pure_wins_over_on(self, monkeypatch):
        monkeypatch.setenv("GQBE_FORCE_PURE", "1")
        assert _kernels.resolve_backend("on") == "pure"
        assert _kernels.select("on") == "pure"
        assert _kernels.kernels.backend == "pure"
        assert _kernels.kernels.probe_tail is _pure.probe_tail

    @needs_native
    def test_select_rebinds_namespace(self, monkeypatch):
        monkeypatch.delenv("GQBE_FORCE_PURE", raising=False)
        assert _kernels.select("on") == "native"
        assert _kernels.kernels.probe_tail is native.probe_tail
        assert _kernels.select("off") == "pure"
        assert _kernels.kernels.probe_tail is _pure.probe_tail

    def test_invalid_mode_raises(self):
        with pytest.raises(EvaluationError, match="native_kernels"):
            _kernels.resolve_backend("fast")

    def test_config_validates_native_kernels(self):
        assert GQBEConfig().native_kernels == "auto"
        assert GQBEConfig(native_kernels="on").native_kernels == "on"
        assert GQBEConfig(native_kernels="off").native_kernels == "off"
        with pytest.raises(EvaluationError, match="native_kernels"):
            GQBEConfig(native_kernels="never")

    def test_force_pure_subprocess_runs_whole_query_on_fallback(
        self, figure1_graph
    ):
        """GQBE_FORCE_PURE=1 in a fresh interpreter: the CI seam."""
        script = (
            "from repro import _kernels\n"
            "from repro.core.config import GQBEConfig\n"
            "from repro.core.gqbe import GQBE\n"
            "from repro.datasets.example_graph import figure1_excerpt\n"
            "assert _kernels.resolve_backend('on') == 'pure'\n"
            "system = GQBE(figure1_excerpt(),"
            " config=GQBEConfig(native_kernels='on'))\n"
            "result = system.query(('Jerry Yang', 'Yahoo!'), k=3)\n"
            "assert _kernels.kernels.backend == 'pure'\n"
            "print([tuple(a.entities) for a in result.answers])\n"
        )
        env = dict(os.environ, GQBE_FORCE_PURE="1")
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        run = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert run.returncode == 0, run.stderr
        # The forced-pure answers equal this process's (native) answers.
        result = GQBE(figure1_graph, config=GQBEConfig(native_kernels="on")).query(
            ("Jerry Yang", "Yahoo!"), k=3
        )
        assert run.stdout.strip() == str(
            [tuple(a.entities) for a in result.answers]
        )
