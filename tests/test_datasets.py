"""Tests for the synthetic dataset generators and query workloads."""

from __future__ import annotations

import random

import pytest

from repro.datasets.domains import ALL_DOMAINS, SharedContext
from repro.datasets.example_graph import figure1_excerpt, figure1_ground_truth
from repro.datasets.synthetic import DBpediaLikeGenerator, FreebaseLikeGenerator
from repro.datasets.workloads import (
    DBPEDIA_QUERY_TABLES,
    FREEBASE_QUERY_TABLES,
    build_dbpedia_workload,
    build_freebase_workload,
)
from repro.exceptions import DatasetError


class TestExampleGraph:
    def test_figure1_contains_running_example(self):
        graph = figure1_excerpt()
        assert graph.has_edge("Jerry Yang", "founded", "Yahoo!")
        assert graph.has_edge("Yahoo!", "headquartered_in", "Sunnyvale")
        assert graph.is_weakly_connected()

    def test_ground_truth_pairs_exist_in_graph(self):
        graph = figure1_excerpt()
        for person, company in figure1_ground_truth():
            assert graph.has_edge(person, "founded", company)


class TestDomains:
    def test_every_domain_produces_triples_and_tables(self):
        rng = random.Random(0)
        ctx = SharedContext.build(rng)
        for builder in ALL_DOMAINS:
            domain = builder(random.Random(1), 6, ctx)
            assert domain.triples, f"{domain.name} produced no triples"
            assert domain.tables, f"{domain.name} produced no tables"
            for rows in domain.tables.values():
                arity = {len(row) for row in rows}
                assert len(arity) == 1, f"{domain.name} has mixed-arity table rows"

    def test_label_prefix_applied(self):
        rng = random.Random(0)
        ctx = SharedContext.build(rng, label_prefix="dbp_")
        domain = ALL_DOMAINS[0](random.Random(1), 4, ctx)
        assert all(label.startswith("dbp_") for _, label, _ in domain.triples)


class TestGenerators:
    def test_generation_is_deterministic(self):
        first = FreebaseLikeGenerator(seed=5, scale=0.2).generate()
        second = FreebaseLikeGenerator(seed=5, scale=0.2).generate()
        assert first.graph == second.graph
        assert first.tables == second.tables

    def test_different_seeds_differ(self):
        first = FreebaseLikeGenerator(seed=5, scale=0.2).generate()
        second = FreebaseLikeGenerator(seed=6, scale=0.2).generate()
        assert first.graph != second.graph

    def test_scale_controls_size(self):
        small = FreebaseLikeGenerator(seed=5, scale=0.2).generate()
        large = FreebaseLikeGenerator(seed=5, scale=0.6).generate()
        assert large.graph.num_edges > small.graph.num_edges

    def test_dbpedia_like_uses_prefixed_labels(self):
        dataset = DBpediaLikeGenerator(seed=5, scale=0.2).generate()
        assert all(label.startswith("dbp_") for label in dataset.graph.labels)

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            FreebaseLikeGenerator(scale=0)

    def test_ground_truth_tuples_are_graph_nodes(self, tiny_dataset):
        for rows in tiny_dataset.tables.values():
            for row in rows:
                for entity in row:
                    assert tiny_dataset.graph.has_node(entity)

    def test_unknown_table_raises(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.table("no_such_table")
        assert "tech_founders" in tiny_dataset.table_names()


class TestWorkloads:
    def test_freebase_workload_has_20_queries(self):
        workload = build_freebase_workload(scale=0.2)
        assert workload.query_ids() == [qid for qid, _ in FREEBASE_QUERY_TABLES]

    def test_dbpedia_workload_has_8_queries(self):
        workload = build_dbpedia_workload(scale=0.3)
        assert workload.query_ids() == [qid for qid, _ in DBPEDIA_QUERY_TABLES]

    def test_query_tuple_not_in_ground_truth(self):
        workload = build_freebase_workload(scale=0.2)
        for query in workload.queries:
            assert query.query_tuple not in query.ground_truth
            assert query.ground_truth_size >= 1

    def test_query_entities_exist_in_graph(self):
        workload = build_freebase_workload(scale=0.2)
        graph = workload.dataset.graph
        for query in workload.queries:
            for entity in query.query_tuple:
                assert graph.has_node(entity)

    def test_with_extra_tuples_moves_ground_truth(self):
        workload = build_freebase_workload(scale=0.2)
        query = workload.query("F18")
        extended = query.with_extra_tuples(2)
        assert len(extended.query_tuples) == 3
        assert extended.ground_truth_size == query.ground_truth_size - 2
        for promoted in extended.query_tuples[1:]:
            assert promoted not in extended.ground_truth

    def test_with_extra_tuples_validation(self):
        workload = build_freebase_workload(scale=0.2)
        query = workload.query("F18")
        with pytest.raises(DatasetError):
            query.with_extra_tuples(-1)
        with pytest.raises(DatasetError):
            query.with_extra_tuples(query.ground_truth_size + 1)

    def test_unknown_query_id_raises(self):
        workload = build_freebase_workload(scale=0.2)
        with pytest.raises(DatasetError):
            workload.query("F99")

    def test_single_entity_queries_present(self):
        workload = build_freebase_workload(scale=0.2)
        assert workload.query("F19").arity == 1
        assert workload.query("F20").arity == 1
        assert workload.query("F1").arity == 3
