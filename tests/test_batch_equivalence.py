"""`query_batch` must be byte-identical to sequential `query()` calls.

The batch arena (:mod:`repro.storage.batch`) memoizes join plans,
plan-prefix relations, first-edge scans and child-extension relations
across the queries of one batch.  Every memo replays work a sequential
query would have computed identically, so the ranked answers — entities,
scores, ranks — and the exploration statistics must match exactly, for
every engine layout and batch size.  These tests pin that contract on the
Fig. 14-style synthetic workload (batch sizes 1, 2 and the full 20-query
workload) and on the Fig. 1 running example.
"""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.workloads import build_freebase_workload
from repro.exceptions import QueryError

#: Engine layouts under test: the default columnar engine, the tuple-row
#: interned engine, and the string-id reference engine.
ENGINES = {
    "columnar": {"intern_entities": True, "columnar": True},
    "rows-int": {"intern_entities": True, "columnar": False},
    "rows-str": {"intern_entities": False, "columnar": False},
}


@pytest.fixture(scope="module")
def workload():
    return build_freebase_workload(seed=7, scale=0.25)


@pytest.fixture(scope="module")
def systems(workload):
    graph = workload.dataset.graph
    built = {}
    for name, flags in ENGINES.items():
        config = GQBEConfig(
            mqg_size=8,
            k_prime=20,
            node_budget=500,
            max_join_rows=50_000,
            **flags,
        )
        built[name] = GQBE(graph, config=config)
    return built


def answer_key(result):
    """Everything observable about a result's ranked answers."""
    return [
        (
            answer.rank,
            answer.entities,
            answer.score,
            answer.structure_score,
            answer.content_score,
        )
        for answer in result.answers
    ]


def stats_key(result):
    stats = result.statistics
    return (
        stats.nodes_evaluated,
        stats.null_nodes,
        stats.nodes_skipped,
        stats.answers_found,
        stats.terminated_early,
        stats.node_budget_exhausted,
    )


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("batch_size", [1, 2, 20])
def test_batch_matches_sequential(systems, workload, engine, batch_size):
    system = systems[engine]
    tuples = [query.query_tuple for query in workload.queries][:batch_size]
    assert len(tuples) == batch_size

    sequential = [system.query(t, k=5) for t in tuples]
    batched = system.query_batch(tuples, k=5)

    assert len(batched) == batch_size
    for seq, bat, query_tuple in zip(sequential, batched, tuples):
        assert bat.query_tuples == (query_tuple,)
        assert answer_key(seq) == answer_key(bat)
        assert stats_key(seq) == stats_key(bat)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_batch_matches_sequential_with_k_prime_override(systems, workload, engine):
    """The Fig. 14 efficiency protocol (k' = k) must stay identical too."""
    system = systems[engine]
    tuples = [query.query_tuple for query in workload.queries]
    sequential = [system.query(t, k=5, k_prime=5) for t in tuples]
    batched = system.query_batch(tuples, k=5, k_prime=5)
    for seq, bat in zip(sequential, batched):
        assert answer_key(seq) == answer_key(bat)
        assert stats_key(seq) == stats_key(bat)


def test_batch_with_memo_disabled_matches(systems, workload):
    """batch_join_memo=False must take the plain per-query path."""
    reference = systems["columnar"]
    config = GQBEConfig(
        mqg_size=8,
        k_prime=20,
        node_budget=500,
        max_join_rows=50_000,
        batch_join_memo=False,
    )
    system = GQBE(workload.dataset.graph, config=config)
    tuples = [query.query_tuple for query in workload.queries][:5]
    batched = system.query_batch(tuples, k=5)
    sequential = [reference.query(t, k=5) for t in tuples]
    for seq, bat in zip(sequential, batched):
        assert answer_key(seq) == answer_key(bat)


def test_batch_with_memo_row_cap_zero_matches(systems, workload):
    """batch_memo_max_rows=0 caches nothing yet answers stay identical."""
    reference = systems["columnar"]
    config = GQBEConfig(
        mqg_size=8,
        k_prime=20,
        node_budget=500,
        max_join_rows=50_000,
        batch_memo_max_rows=0,
    )
    system = GQBE(workload.dataset.graph, config=config)
    tuples = [query.query_tuple for query in workload.queries][:5]
    batched = system.query_batch(tuples, k=5)
    sequential = [reference.query(t, k=5) for t in tuples]
    for seq, bat in zip(sequential, batched):
        assert answer_key(seq) == answer_key(bat)


def test_duplicate_queries_collapse_and_fan_out(systems, workload):
    """Duplicates are evaluated once but every caller gets full answers."""
    system = systems["columnar"]
    base = workload.queries[0].query_tuple
    other = workload.queries[1].query_tuple
    batch = [base, other, base, base, other]
    results = system.query_batch(batch, k=5)
    assert len(results) == len(batch)
    reference = {
        base: system.query(base, k=5),
        other: system.query(other, k=5),
    }
    for query_tuple, result in zip(batch, results):
        assert answer_key(result) == answer_key(reference[query_tuple])
    # Fan-out results are independent objects sharing no mutable state.
    assert results[0].answers is not results[2].answers
    assert results[0].statistics is not results[2].statistics


def test_batch_arena_is_discarded_between_calls(systems, workload):
    """Two identical batch calls return identical answers (no state leak)."""
    system = systems["columnar"]
    tuples = [query.query_tuple for query in workload.queries][:6]
    first = system.query_batch(tuples, k=5)
    second = system.query_batch(tuples, k=5)
    for a, b in zip(first, second):
        assert answer_key(a) == answer_key(b)
        assert stats_key(a) == stats_key(b)


def test_empty_batch_and_bad_tuples():
    from repro.datasets.example_graph import figure1_excerpt

    system = GQBE(figure1_excerpt(), config=GQBEConfig(mqg_size=8))
    assert system.query_batch([]) == []
    with pytest.raises(QueryError):
        system.query_batch([("Jerry Yang",), ()])


def test_figure1_batch_answers(figure1_system, figure1_truth):
    """Running example: batch answers still contain the ground truth."""
    result = figure1_system.query_batch([("Jerry Yang", "Yahoo!")], k=5)[0]
    answers = result.answer_tuples()
    for expected in figure1_truth:
        assert expected in answers
